#ifndef SITSTATS_SERVER_PROTOCOL_H_
#define SITSTATS_SERVER_PROTOCOL_H_

#include <cstdint>

#include <optional>
#include <string>

#include "common/result.h"
#include "sit/sit.h"

namespace sitstats {

/// The sitstats-server wire protocol: newline-terminated ASCII lines in
/// both directions, one request per line, one response line per request,
/// delivered in request order per connection.
///
/// Requests (tokens separated by single spaces):
///
///   PING
///   STATS
///   SHUTDOWN
///   ESTIMATE <sit-spec> <lo> <hi> [key=value ...]
///   BUILD <sit-spec> [key=value ...]
///   SLEEP <ms> [key=value ...]
///   METRICS
///   TRACE on|off|dump [path=<file>]
///   ACCURACY <estimate-id> true_card=<n>
///
/// <sit-spec> is the ParseSitSpec grammar ("T.col" or
/// "T.col:A.x=B.y;B.y=C.z") and therefore contains no spaces. Recognized
/// options: timeout_ms=N (ESTIMATE/BUILD/SLEEP), variant=<SweepVariant>,
/// rate=<sampling rate>, buckets=N (BUILD only). SLEEP is a test-only
/// endpoint that occupies a build slot for <ms> milliseconds while
/// honouring cancellation — it exists to make queue-full and timeout
/// behaviour testable without large data.
///
/// METRICS scrapes the server's metrics registry; TRACE toggles runtime
/// span collection or dumps the collected trace to a server-side file;
/// ACCURACY feeds the true cardinality back for an earlier ESTIMATE (the
/// <estimate-id> from its response payload), turning it into q-error
/// telemetry. All three ride the estimate queue: they are cheap and must
/// stay responsive while builds hog the build slots.
///
/// Responses:
///
///   OK[ <payload>]
///   ERR <StatusCode> <message...>
///
/// The payload never contains newlines, with one exception: METRICS
/// responds "OK metrics_bytes=<n>\n" followed by exactly <n> bytes of
/// Prometheus text exposition (which is multi-line by nature) and a
/// final newline. ERR messages may contain spaces.

struct Request {
  enum class Kind {
    kPing,
    kStats,
    kShutdown,
    kEstimate,
    kBuild,
    kSleep,
    kMetrics,
    kTraceCtl,
    kAccuracy,
  };

  Kind kind = Kind::kPing;
  /// Set for kEstimate / kBuild.
  std::optional<SitDescriptor> descriptor;
  /// Range predicate bounds (kEstimate).
  double lo = 0.0;
  double hi = 0.0;
  /// Build knobs (kBuild); unset fields defer to server defaults.
  std::optional<SweepVariant> variant;
  double sampling_rate = -1.0;  // < 0: server default
  int64_t num_buckets = -1;     // < 0: server default
  /// 0 means "no deadline".
  uint64_t timeout_ms = 0;
  /// kSleep only.
  uint64_t sleep_ms = 0;
  /// kTraceCtl: "on", "off", or "dump".
  std::string trace_mode;
  /// kTraceCtl dump: server-side file the Chrome trace is written to.
  std::string trace_path;
  /// kAccuracy: the estimate_id echoed by an earlier ESTIMATE response.
  std::string estimate_id;
  /// kAccuracy: the observed true cardinality.
  double true_card = 0.0;

  /// True for requests served from the read-mostly estimate path; false
  /// for requests that occupy a build slot. The observability verbs are
  /// estimate-class on purpose: METRICS must answer while a long build
  /// is wedging the build queue, or it is useless for diagnosing it.
  bool IsEstimateClass() const {
    return kind != Kind::kBuild && kind != Kind::kSleep;
  }
};

const char* RequestKindToString(Request::Kind kind);

/// Parses one request line (without the trailing newline).
Result<Request> ParseRequest(const std::string& line);

/// Renders a request back into its wire form (used by the client).
std::string FormatRequest(const Request& request);

/// Response line construction / parsing. FormatErrorResponse maps a non-OK
/// Status onto "ERR <code> <message>"; ParseResponse inverts both forms,
/// returning the payload or the reconstructed Status.
std::string FormatOkResponse(const std::string& payload);
std::string FormatErrorResponse(const Status& status);
Result<std::string> ParseResponse(const std::string& line);

}  // namespace sitstats

#endif  // SITSTATS_SERVER_PROTOCOL_H_
