#ifndef SITSTATS_SERVER_PROTOCOL_H_
#define SITSTATS_SERVER_PROTOCOL_H_

#include <cstdint>

#include <optional>
#include <string>

#include "common/result.h"
#include "sit/sit.h"

namespace sitstats {

/// The sitstats-server wire protocol: newline-terminated ASCII lines in
/// both directions, one request per line, one response line per request,
/// delivered in request order per connection.
///
/// Requests (tokens separated by single spaces):
///
///   PING
///   STATS
///   SHUTDOWN
///   ESTIMATE <sit-spec> <lo> <hi> [key=value ...]
///   BUILD <sit-spec> [key=value ...]
///   SLEEP <ms> [key=value ...]
///
/// <sit-spec> is the ParseSitSpec grammar ("T.col" or
/// "T.col:A.x=B.y;B.y=C.z") and therefore contains no spaces. Recognized
/// options: timeout_ms=N (ESTIMATE/BUILD/SLEEP), variant=<SweepVariant>,
/// rate=<sampling rate>, buckets=N (BUILD only). SLEEP is a test-only
/// endpoint that occupies a build slot for <ms> milliseconds while
/// honouring cancellation — it exists to make queue-full and timeout
/// behaviour testable without large data.
///
/// Responses:
///
///   OK[ <payload>]
///   ERR <StatusCode> <message...>
///
/// The payload never contains newlines; ERR messages may contain spaces.

struct Request {
  enum class Kind { kPing, kStats, kShutdown, kEstimate, kBuild, kSleep };

  Kind kind = Kind::kPing;
  /// Set for kEstimate / kBuild.
  std::optional<SitDescriptor> descriptor;
  /// Range predicate bounds (kEstimate).
  double lo = 0.0;
  double hi = 0.0;
  /// Build knobs (kBuild); unset fields defer to server defaults.
  std::optional<SweepVariant> variant;
  double sampling_rate = -1.0;  // < 0: server default
  int64_t num_buckets = -1;     // < 0: server default
  /// 0 means "no deadline".
  uint64_t timeout_ms = 0;
  /// kSleep only.
  uint64_t sleep_ms = 0;

  /// True for requests served from the read-mostly estimate path; false
  /// for requests that occupy a build slot.
  bool IsEstimateClass() const {
    return kind == Kind::kPing || kind == Kind::kStats ||
           kind == Kind::kEstimate || kind == Kind::kShutdown;
  }
};

const char* RequestKindToString(Request::Kind kind);

/// Parses one request line (without the trailing newline).
Result<Request> ParseRequest(const std::string& line);

/// Renders a request back into its wire form (used by the client).
std::string FormatRequest(const Request& request);

/// Response line construction / parsing. FormatErrorResponse maps a non-OK
/// Status onto "ERR <code> <message>"; ParseResponse inverts both forms,
/// returning the payload or the reconstructed Status.
std::string FormatOkResponse(const std::string& payload);
std::string FormatErrorResponse(const Status& status);
Result<std::string> ParseResponse(const std::string& line);

}  // namespace sitstats

#endif  // SITSTATS_SERVER_PROTOCOL_H_
