#include "server/accuracy_log.h"

#include <cstdio>
#include <utility>

namespace sitstats {

std::string EstimateLedger::Remember(LedgerEntry entry) {
  MutexLock lock(mu_);
  char id_buf[24];
  std::snprintf(id_buf, sizeof(id_buf), "e%llu",
                static_cast<unsigned long long>(next_id_++));
  entry.estimate_id = id_buf;
  std::string id = entry.estimate_id;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
  return id;
}

Result<LedgerEntry> EstimateLedger::Take(const std::string& estimate_id) {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->estimate_id == estimate_id) {
      LedgerEntry entry = std::move(*it);
      entries_.erase(it);
      return entry;
    }
  }
  return Status::NotFound("no outstanding estimate '" + estimate_id +
                          "' (already consumed, evicted, or never issued)");
}

size_t EstimateLedger::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace sitstats
