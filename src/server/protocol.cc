#include "server/protocol.h"

#include <cstdio>

#include <vector>

#include "common/string_util.h"
#include "query/spec_parse.h"
#include "sit/serialization.h"

namespace sitstats {

namespace {

/// Full-precision double rendering so estimate bounds survive the wire.
std::string FormatExact(double v) {
  char buffer[64];
  (void)std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Applies one "key=value" option token to `request`; errors on unknown
/// keys so typos fail loudly instead of silently using a default.
Status ApplyOption(const std::string& token, Request* request) {
  size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("malformed option '" + token +
                                   "', expected key=value");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "timeout_ms") {
    SITSTATS_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(value));
    if (parsed < 0) {
      return Status::InvalidArgument("timeout_ms must be >= 0");
    }
    request->timeout_ms = static_cast<uint64_t>(parsed);
    return Status::OK();
  }
  if (key == "variant") {
    SITSTATS_ASSIGN_OR_RETURN(SweepVariant variant,
                              SweepVariantFromString(value));
    request->variant = variant;
    return Status::OK();
  }
  if (key == "rate") {
    SITSTATS_ASSIGN_OR_RETURN(double rate, ParseDouble(value));
    if (!(rate > 0.0 && rate <= 1.0)) {
      return Status::InvalidArgument("rate must be in (0, 1]");
    }
    request->sampling_rate = rate;
    return Status::OK();
  }
  if (key == "buckets") {
    SITSTATS_ASSIGN_OR_RETURN(int64_t buckets, ParseInt64(value));
    if (buckets <= 0) {
      return Status::InvalidArgument("buckets must be > 0");
    }
    request->num_buckets = buckets;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown request option '" + key + "'");
}

Status ApplyOptions(const std::vector<std::string>& tokens, size_t start,
                    Request* request) {
  for (size_t i = start; i < tokens.size(); ++i) {
    SITSTATS_RETURN_IF_ERROR(ApplyOption(tokens[i], request));
  }
  return Status::OK();
}

std::string FormatCommonOptions(const Request& request) {
  std::string out;
  if (request.timeout_ms != 0) {
    out += " timeout_ms=" + std::to_string(request.timeout_ms);
  }
  if (request.variant.has_value()) {
    out += std::string(" variant=") + SweepVariantToString(*request.variant);
  }
  if (request.sampling_rate >= 0.0) {
    out += " rate=" + FormatExact(request.sampling_rate);
  }
  if (request.num_buckets >= 0) {
    out += " buckets=" + std::to_string(request.num_buckets);
  }
  return out;
}

}  // namespace

const char* RequestKindToString(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kPing:
      return "PING";
    case Request::Kind::kStats:
      return "STATS";
    case Request::Kind::kShutdown:
      return "SHUTDOWN";
    case Request::Kind::kEstimate:
      return "ESTIMATE";
    case Request::Kind::kBuild:
      return "BUILD";
    case Request::Kind::kSleep:
      return "SLEEP";
    case Request::Kind::kMetrics:
      return "METRICS";
    case Request::Kind::kTraceCtl:
      return "TRACE";
    case Request::Kind::kAccuracy:
      return "ACCURACY";
  }
  return "UNKNOWN";
}

Result<Request> ParseRequest(const std::string& line) {
  std::vector<std::string> tokens = Split(line, ' ');
  if (tokens.empty() || tokens[0].empty()) {
    return Status::InvalidArgument("empty request line");
  }
  const std::string& verb = tokens[0];
  Request request;
  if (verb == "PING" || verb == "STATS" || verb == "SHUTDOWN" ||
      verb == "METRICS") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument(verb + " takes no arguments");
    }
    request.kind = verb == "PING"      ? Request::Kind::kPing
                   : verb == "STATS"   ? Request::Kind::kStats
                   : verb == "METRICS" ? Request::Kind::kMetrics
                                       : Request::Kind::kShutdown;
    return request;
  }
  if (verb == "TRACE") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("TRACE needs on|off|dump");
    }
    request.kind = Request::Kind::kTraceCtl;
    request.trace_mode = tokens[1];
    if (request.trace_mode != "on" && request.trace_mode != "off" &&
        request.trace_mode != "dump") {
      return Status::InvalidArgument("TRACE mode must be on, off or dump");
    }
    for (size_t i = 2; i < tokens.size(); ++i) {
      if (tokens[i].rfind("path=", 0) == 0 && tokens[i].size() > 5) {
        request.trace_path = tokens[i].substr(5);
        continue;
      }
      return Status::InvalidArgument("unknown TRACE option '" + tokens[i] +
                                     "'");
    }
    if (request.trace_mode == "dump" && request.trace_path.empty()) {
      return Status::InvalidArgument("TRACE dump needs path=<file>");
    }
    return request;
  }
  if (verb == "ACCURACY") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument(
          "ACCURACY needs <estimate-id> true_card=<n>");
    }
    request.kind = Request::Kind::kAccuracy;
    request.estimate_id = tokens[1];
    if (tokens[2].rfind("true_card=", 0) != 0) {
      return Status::InvalidArgument(
          "ACCURACY second argument must be true_card=<n>");
    }
    SITSTATS_ASSIGN_OR_RETURN(request.true_card,
                              ParseDouble(tokens[2].substr(10)));
    if (!(request.true_card >= 0.0)) {
      return Status::InvalidArgument("true_card must be >= 0");
    }
    return request;
  }
  if (verb == "ESTIMATE") {
    if (tokens.size() < 4) {
      return Status::InvalidArgument(
          "ESTIMATE needs <sit-spec> <lo> <hi>, got '" + line + "'");
    }
    request.kind = Request::Kind::kEstimate;
    SITSTATS_ASSIGN_OR_RETURN(SitDescriptor descriptor,
                              ParseSitSpec(tokens[1]));
    request.descriptor.emplace(std::move(descriptor));
    SITSTATS_ASSIGN_OR_RETURN(request.lo, ParseDouble(tokens[2]));
    SITSTATS_ASSIGN_OR_RETURN(request.hi, ParseDouble(tokens[3]));
    SITSTATS_RETURN_IF_ERROR(ApplyOptions(tokens, 4, &request));
    return request;
  }
  if (verb == "BUILD") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("BUILD needs <sit-spec>");
    }
    request.kind = Request::Kind::kBuild;
    SITSTATS_ASSIGN_OR_RETURN(SitDescriptor descriptor,
                              ParseSitSpec(tokens[1]));
    request.descriptor.emplace(std::move(descriptor));
    SITSTATS_RETURN_IF_ERROR(ApplyOptions(tokens, 2, &request));
    return request;
  }
  if (verb == "SLEEP") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("SLEEP needs <ms>");
    }
    request.kind = Request::Kind::kSleep;
    SITSTATS_ASSIGN_OR_RETURN(int64_t ms, ParseInt64(tokens[1]));
    if (ms < 0) return Status::InvalidArgument("SLEEP ms must be >= 0");
    request.sleep_ms = static_cast<uint64_t>(ms);
    SITSTATS_RETURN_IF_ERROR(ApplyOptions(tokens, 2, &request));
    return request;
  }
  return Status::InvalidArgument("unknown request verb '" + verb + "'");
}

std::string FormatRequest(const Request& request) {
  switch (request.kind) {
    case Request::Kind::kPing:
    case Request::Kind::kStats:
    case Request::Kind::kShutdown:
      return RequestKindToString(request.kind);
    case Request::Kind::kEstimate:
      return "ESTIMATE " + FormatSitSpec(*request.descriptor) + " " +
             FormatExact(request.lo) + " " + FormatExact(request.hi) +
             FormatCommonOptions(request);
    case Request::Kind::kBuild:
      return "BUILD " + FormatSitSpec(*request.descriptor) +
             FormatCommonOptions(request);
    case Request::Kind::kSleep:
      return "SLEEP " + std::to_string(request.sleep_ms) +
             FormatCommonOptions(request);
    case Request::Kind::kMetrics:
      return "METRICS";
    case Request::Kind::kTraceCtl:
      return "TRACE " + request.trace_mode +
             (request.trace_path.empty() ? ""
                                         : " path=" + request.trace_path);
    case Request::Kind::kAccuracy:
      return "ACCURACY " + request.estimate_id +
             " true_card=" + FormatExact(request.true_card);
  }
  return "";
}

std::string FormatOkResponse(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string FormatErrorResponse(const Status& status) {
  return std::string("ERR ") + StatusCodeToString(status.code()) + " " +
         status.message();
}

Result<std::string> ParseResponse(const std::string& line) {
  if (line == "OK") return std::string();
  if (line.rfind("OK ", 0) == 0) return line.substr(3);
  if (line.rfind("ERR ", 0) == 0) {
    const std::string rest = line.substr(4);
    size_t space = rest.find(' ');
    const std::string code_name =
        space == std::string::npos ? rest : rest.substr(0, space);
    const std::string message =
        space == std::string::npos ? "" : rest.substr(space + 1);
    StatusCode code;
    if (!StatusCodeFromString(code_name, &code) || code == StatusCode::kOk) {
      return Status::Internal("malformed error response '" + line + "'");
    }
    return Status(code, message);
  }
  return Status::Internal("malformed response line '" + line + "'");
}

}  // namespace sitstats
