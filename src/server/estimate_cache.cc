#include "server/estimate_cache.h"

namespace sitstats {

EstimateCache::EstimateCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t EstimateCache::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

bool EstimateCache::Lookup(const std::string& key, std::string* payload) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  *payload = it->second->payload;
  return true;
}

void EstimateCache::Insert(uint64_t observed_epoch, const std::string& key,
                           std::string payload) {
  MutexLock lock(mu_);
  if (observed_epoch != epoch_) return;  // raced with an invalidation
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(payload)});
  index_[key] = lru_.begin();
  EvictToCapacityLocked();
}

void EstimateCache::EvictToCapacityLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void EstimateCache::Invalidate() {
  MutexLock lock(mu_);
  ++epoch_;
  ++invalidations_;
  lru_.clear();
  index_.clear();
}

EstimateCache::Stats EstimateCache::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.invalidations = invalidations_;
  stats.entries = lru_.size();
  return stats;
}

}  // namespace sitstats
