#ifndef SITSTATS_COMMON_FAULT_INJECTION_H_
#define SITSTATS_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "common/sync.h"

namespace sitstats {

/// Deterministic, process-global fault injector for error-path testing.
///
/// Fallible operations declare *named sites* with
///
///   SITSTATS_FAULT_SITE("storage.scan.open");
///
/// at the point where an I/O, parse, or build failure would surface. In
/// normal operation a site is a single relaxed atomic load (and compiles
/// away entirely when the SITSTATS_FAULT_INJECTION CMake option is OFF).
/// A test arms the injector to fail the N-th hit of one site with a chosen
/// Status; the sweep driver (tools/fault_sweep.cc,
/// tests/fault_injection_test.cc) enumerates every reachable site x
/// ordinal for a workload and proves each injected failure surfaces as a
/// clean error with no crash, no hang, and no partially-registered state.
///
/// Allocation-failure (OOM) mode: sites named "oom.*" are declared with
/// SITSTATS_OOM_SITE at points that reserve memory proportional to data
/// size (sample vectors, histogram bucket arrays, cache insertions). Armed
/// via ArmAllocationFailure, they fail with kResourceExhausted carrying
/// the requested byte count — modelling the allocator saying no, so the
/// sweep can prove an out-of-memory surfaces as a clean error rather than
/// a crash or a half-registered statistic.
///
/// Determinism: sites are hit a fixed number of times for a fixed (seeded)
/// workload — site ordinals count *occurrences*, not wall-clock events, so
/// a sweep enumerated once replays identically. Under a thread pool the
/// per-site totals are stable even though the interleaving is not; "fail
/// hit N of site S" then fails one nondeterministically-chosen occurrence,
/// which is exactly the coverage concurrency needs.
///
/// Thread safety: Arm/Disarm/StartCounting/StopCounting are for the test
/// driver thread; MaybeFail may race freely from worker threads.
class FaultInjector {
 public:
  /// Per-site hit totals observed during a counting run.
  using SiteCounts = std::map<std::string, uint64_t>;

  static FaultInjector& Global();

  /// Arms the injector: the `ordinal`-th (1-based) hit of `site` fails
  /// with `status`. Resets all hit counters and the injected-fault count.
  /// `status` must not be OK.
  void Arm(const std::string& site, uint64_t ordinal, Status status);

  /// Arms an allocation failure: the `ordinal`-th hit of `site` fails with
  /// kResourceExhausted as if the reservation guarded by the site had been
  /// refused by the allocator. `detail` (e.g. a sweep marker) is folded
  /// into the status message; the firing site appends the byte count it
  /// was about to reserve.
  void ArmAllocationFailure(const std::string& site, uint64_t ordinal,
                            const std::string& detail = "");

  /// Disarms the injector and stops counting; sites become no-ops again.
  void Disarm();

  /// Starts a counting (enumeration) run: every site hit is tallied and
  /// nothing fails. Resets previous counts.
  void StartCounting();

  /// Stops counting and returns the per-site hit totals.
  SiteCounts StopCounting();

  /// Number of faults injected since the last Arm() (0 or 1 — an armed
  /// injector fires at most once).
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_acquire);
  }

  bool armed() const;

  /// The hook behind SITSTATS_FAULT_SITE. Returns the armed Status when
  /// this hit is the armed site x ordinal, OK otherwise.
  Status MaybeFail(const char* site);

  /// The hook behind SITSTATS_OOM_SITE: like MaybeFail, but a firing
  /// kResourceExhausted status reports the `bytes` the caller was about
  /// to reserve.
  Status MaybeFailAlloc(const char* site, uint64_t bytes);

 private:
  FaultInjector() = default;

  Status MaybeFailLocked(const char* site) REQUIRES(mu_);

  /// Fast-path gate: true while armed or counting. Checked with a relaxed
  /// load before anything else so idle sites cost one branch.
  std::atomic<bool> active_{false};
  std::atomic<uint64_t> faults_injected_{0};

  mutable Mutex mu_;
  bool counting_ GUARDED_BY(mu_) = false;
  bool armed_ GUARDED_BY(mu_) = false;
  bool fired_ GUARDED_BY(mu_) = false;
  std::string armed_site_ GUARDED_BY(mu_);
  uint64_t armed_ordinal_ GUARDED_BY(mu_) = 0;
  Status injected_status_ GUARDED_BY(mu_);
  SiteCounts counts_ GUARDED_BY(mu_);
};

}  // namespace sitstats

/// Declares a fault-injection site inside a function returning Status or
/// Result<T>: when the injector is armed for this site's current ordinal,
/// the function returns the injected error. Compiles to nothing when the
/// SITSTATS_FAULT_INJECTION CMake option is OFF.
#if defined(SITSTATS_FAULT_INJECTION_ENABLED)
#define SITSTATS_FAULT_SITE(site)                                     \
  do {                                                                \
    ::sitstats::Status _fault_st =                                    \
        ::sitstats::FaultInjector::Global().MaybeFail(site);          \
    if (!_fault_st.ok()) return _fault_st;                            \
  } while (false)
#else
#define SITSTATS_FAULT_SITE(site) \
  do {                            \
  } while (false)
#endif

/// Expression form for call sites that must *survive* an injected fault
/// instead of returning it — the server's accept/read/write paths record
/// the Status and keep serving. Evaluates to the injected Status (or OK);
/// evaluates to OK with zero overhead when the option is OFF.
#if defined(SITSTATS_FAULT_INJECTION_ENABLED)
#define SITSTATS_FAULT_CHECK(site) \
  ::sitstats::FaultInjector::Global().MaybeFail(site)
#else
#define SITSTATS_FAULT_CHECK(site) ::sitstats::Status::OK()
#endif

/// Declares an allocation-failure (OOM) injection site guarding a memory
/// reservation of roughly `bytes` bytes, inside a function returning
/// Status or Result<T>. Site names use the "oom." prefix by convention
/// (checked by tools/sitstats_lint against the fault-site inventory).
/// When armed via ArmAllocationFailure, the function returns
/// kResourceExhausted before the reservation happens.
#if defined(SITSTATS_FAULT_INJECTION_ENABLED)
#define SITSTATS_OOM_SITE(site, bytes)                                \
  do {                                                                \
    ::sitstats::Status _oom_st =                                      \
        ::sitstats::FaultInjector::Global().MaybeFailAlloc(           \
            site, static_cast<uint64_t>(bytes));                      \
    if (!_oom_st.ok()) return _oom_st;                                \
  } while (false)
#else
#define SITSTATS_OOM_SITE(site, bytes) \
  do {                                 \
  } while (false)
#endif

#endif  // SITSTATS_COMMON_FAULT_INJECTION_H_
