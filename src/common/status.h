#ifndef SITSTATS_COMMON_STATUS_H_
#define SITSTATS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace sitstats {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kIOError,
  kNotImplemented,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Parses the name produced by StatusCodeToString; false on unknown names.
/// Used by the server protocol, which ships codes by name on the wire.
bool StatusCodeFromString(const std::string& name, StatusCode* code);

/// Outcome of a fallible operation. The library does not throw exceptions:
/// every operation that can fail returns a Status (or a Result<T>, which
/// carries a Status on the error path).
///
/// Statuses are cheap to copy in the success case (no allocation).
///
/// The class is [[nodiscard]]: silently dropping an error return is a
/// compile-time warning (an error under SITSTATS_WERROR). Callers must
/// propagate (SITSTATS_RETURN_IF_ERROR), assert (SITSTATS_CHECK_OK /
/// SITSTATS_DCHECK_OK), or branch on the value.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define SITSTATS_RETURN_IF_ERROR(expr)          \
  do {                                          \
    ::sitstats::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace sitstats

/// Unprefixed spellings for files that opt in; guarded so inclusion next
/// to another status library (absl, arrow) never redefines theirs.
#ifndef RETURN_IF_ERROR
#define RETURN_IF_ERROR(expr) SITSTATS_RETURN_IF_ERROR(expr)
#endif

#endif  // SITSTATS_COMMON_STATUS_H_
