#ifndef SITSTATS_COMMON_LOGGING_H_
#define SITSTATS_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace sitstats {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded. Defaults
/// to kInfo, overridable at startup via the SITSTATS_LOG_LEVEL environment
/// variable ("debug" | "info" | "warning" | "error", or 0-3). Reads and
/// writes are atomic, and each log line is emitted with a single stdio
/// write, so logging is safe from concurrent threads.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" ("warn") / "error" or a numeric
/// 0-3 (case-insensitive). Returns false on unrecognized input, leaving
/// `level` untouched.
bool ParseLogLevel(const std::string& text, LogLevel* level);

namespace internal {

/// Accumulates one log line and emits it atomically on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  bool fatal_ = false;
  std::ostringstream stream_;

  friend class FatalLogMessage;
};

/// Like LogMessage but aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line);
};

}  // namespace internal
}  // namespace sitstats

#define SITSTATS_LOG(level)                                      \
  ::sitstats::internal::LogMessage(::sitstats::LogLevel::level,  \
                                   __FILE__, __LINE__)

/// Asserts an invariant; aborts with a message when violated. Active in all
/// build types: statistics code silently producing garbage is worse than a
/// crash.
#define SITSTATS_CHECK(condition)                                     \
  if (!(condition))                                                   \
  ::sitstats::internal::FatalLogMessage(__FILE__, __LINE__)           \
      << "Check failed: " #condition " "

#define SITSTATS_CHECK_OK(expr)                                       \
  if (::sitstats::Status _st = (expr); !_st.ok())                     \
  ::sitstats::internal::FatalLogMessage(__FILE__, __LINE__)           \
      << "Status not OK: " << _st.ToString()

/// Debug-only assertions. Active when NDEBUG is not defined (Debug
/// builds) or when SITSTATS_FORCE_DCHECKS is defined (lets sanitizer
/// jobs on optimized builds keep the invariant checks). When disabled
/// the condition is compiled but never evaluated, so operands stay
/// odr-used (no unused-variable warnings) and side effects are skipped.
///
/// Deep validators (Histogram::Validate, Schedule::Validate,
/// Catalog::ValidateConsistency) are wired to build/solve boundaries
/// through SITSTATS_DCHECK_OK, so their O(n) cost is debug-only.
#if !defined(NDEBUG) || defined(SITSTATS_FORCE_DCHECKS)
#define SITSTATS_DCHECKS_ENABLED 1
#else
#define SITSTATS_DCHECKS_ENABLED 0
#endif

#if SITSTATS_DCHECKS_ENABLED
#define SITSTATS_DCHECK(condition) SITSTATS_CHECK(condition)
#define SITSTATS_DCHECK_OK(expr) SITSTATS_CHECK_OK(expr)
#else
#define SITSTATS_DCHECK(condition) \
  while (false) SITSTATS_CHECK(condition)
#define SITSTATS_DCHECK_OK(expr) \
  while (false) SITSTATS_CHECK_OK(expr)
#endif

/// Comparison forms that print both operands on failure.
#define SITSTATS_DCHECK_CMP(a, b, op)                              \
  SITSTATS_DCHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define SITSTATS_DCHECK_EQ(a, b) SITSTATS_DCHECK_CMP(a, b, ==)
#define SITSTATS_DCHECK_NE(a, b) SITSTATS_DCHECK_CMP(a, b, !=)
#define SITSTATS_DCHECK_LT(a, b) SITSTATS_DCHECK_CMP(a, b, <)
#define SITSTATS_DCHECK_LE(a, b) SITSTATS_DCHECK_CMP(a, b, <=)
#define SITSTATS_DCHECK_GT(a, b) SITSTATS_DCHECK_CMP(a, b, >)
#define SITSTATS_DCHECK_GE(a, b) SITSTATS_DCHECK_CMP(a, b, >=)

#endif  // SITSTATS_COMMON_LOGGING_H_
