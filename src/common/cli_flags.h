#ifndef SITSTATS_COMMON_CLI_FLAGS_H_
#define SITSTATS_COMMON_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace sitstats {

/// Grammar knobs for CliFlags::Parse. Both tools share one parser;
/// per-tool vocabulary (which keys repeat, which are boolean switches)
/// is configuration, not a forked implementation.
struct CliParseOptions {
  /// Keys collected into Repeated() instead of last-one-wins values
  /// (e.g. --join, --sit).
  std::set<std::string> repeated_keys;
  /// Keys that are presence-only switches taking no value (--exact).
  std::set<std::string> boolean_keys;
  /// Maximum number of positional arguments; parsing fails loudly past
  /// it. Negative = unlimited.
  int max_positional = -1;
};

/// The command-line grammar shared by the sitstats tools: positional
/// arguments plus `--key value` / `--key=value` flags. Malformed numeric
/// flags are usage errors, not silent zeros (atof would turn
/// `--rate ten` into 0). Carries the "cli.flags.parse" and
/// "cli.flags.value" fault sites so the error-path sweep covers argument
/// handling in both tools.
class CliFlags {
 public:
  static Result<CliFlags> Parse(int argc, char** argv, int start,
                                const CliParseOptions& options = {});

  /// Value of `--key`, or `fallback` when absent.
  std::string Get(const std::string& key, const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  /// True when a boolean switch (CliParseOptions::boolean_keys) was given.
  bool GetBool(const std::string& key) const;
  /// Every value of a repeated key, in argv order.
  const std::vector<std::string>& Repeated(const std::string& key) const;
  bool Has(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> repeated_;
  std::set<std::string> booleans_;
};

}  // namespace sitstats

#endif  // SITSTATS_COMMON_CLI_FLAGS_H_
