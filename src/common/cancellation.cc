#include "common/cancellation.h"

#include <thread>

#include "common/sync.h"

namespace sitstats {

namespace internal {

/// Shared between one source and its tokens. The flag is the fast path;
/// the mutex guards the callback list and backs the waiter cv.
struct CancellationState {
  std::atomic<bool> cancelled{false};
  Mutex mu;
  CondVar cv;
  uint64_t next_id GUARDED_BY(mu) = 1;
  std::vector<std::pair<uint64_t, std::function<void()>>> callbacks
      GUARDED_BY(mu);
};

}  // namespace internal

bool CancellationToken::cancelled() const {
  return state_ != nullptr &&
         state_->cancelled.load(std::memory_order_acquire);
}

Status CancellationToken::CheckCancelled(const std::string& what) const {
  if (cancelled()) return Status::Cancelled(what + " cancelled");
  return Status::OK();
}

bool CancellationToken::WaitForCancellation(
    std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) {
    // Sourceless tokens can never be woken; just sleep out the timeout.
    std::this_thread::sleep_for(timeout);
    return false;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(state_->mu);
  while (!state_->cancelled.load(std::memory_order_acquire)) {
    if (!state_->cv.WaitUntil(state_->mu, deadline)) {
      return state_->cancelled.load(std::memory_order_acquire);
    }
  }
  return true;
}

uint64_t CancellationToken::OnCancel(std::function<void()> fn) const {
  if (state_ == nullptr) return 0;
  uint64_t id;
  {
    MutexLock lock(state_->mu);
    id = state_->next_id++;
    state_->callbacks.emplace_back(id, std::move(fn));
  }
  // Registration may race with Cancel(): if the flag is already set, the
  // cancelling thread may or may not have seen our entry, so run the
  // callback here too. Callbacks therefore tolerate a duplicate call
  // (every in-tree use is an idempotent notify).
  if (cancelled()) {
    std::function<void()> to_run;
    {
      MutexLock lock(state_->mu);
      for (auto& [entry_id, entry_fn] : state_->callbacks) {
        if (entry_id == id) {
          to_run = entry_fn;
          break;
        }
      }
    }
    if (to_run) to_run();
  }
  return id;
}

void CancellationToken::RemoveCallback(uint64_t id) const {
  if (state_ == nullptr || id == 0) return;
  MutexLock lock(state_->mu);
  for (auto it = state_->callbacks.begin(); it != state_->callbacks.end();
       ++it) {
    if (it->first == id) {
      state_->callbacks.erase(it);
      return;
    }
  }
}

namespace {

/// Fires the signal on `state`: sets the flag, wakes waiters, runs the
/// registered callbacks once. Idempotent.
void CancelState(internal::CancellationState* state) {
  std::vector<std::pair<uint64_t, std::function<void()>>> callbacks;
  {
    MutexLock lock(state->mu);
    if (state->cancelled.exchange(true, std::memory_order_acq_rel)) {
      return;  // idempotent
    }
    state->cv.NotifyAll();
    callbacks = state->callbacks;
  }
  for (auto& [id, fn] : callbacks) {
    if (fn) fn();
  }
}

}  // namespace

CancellationSource::CancellationSource()
    : state_(std::make_shared<internal::CancellationState>()) {}

CancellationSource::CancellationSource(const CancellationToken& parent)
    : state_(std::make_shared<internal::CancellationState>()),
      parent_(parent) {
  // Weak capture: the parent may outlive this source, and the registration
  // is removed in the destructor, but OnCancel's already-cancelled inline
  // call can still race a concurrent destructor — the link never dangles.
  std::weak_ptr<internal::CancellationState> weak = state_;
  parent_registration_ = parent_.OnCancel([weak] {
    if (std::shared_ptr<internal::CancellationState> state = weak.lock()) {
      CancelState(state.get());
    }
  });
}

CancellationSource::~CancellationSource() {
  parent_.RemoveCallback(parent_registration_);
}

void CancellationSource::Cancel() { CancelState(state_.get()); }

CancellationToken CancellationSource::token() const {
  return CancellationToken(state_);
}

}  // namespace sitstats
