#include "common/string_util.h"

#include <sstream>

namespace sitstats {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

std::string NumberedName(const char* prefix, long long n) {
  std::string name(prefix);
  name += std::to_string(n);
  return name;
}

}  // namespace sitstats
