#include "common/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include <sstream>

namespace sitstats {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

Result<int64_t> ParseInt64(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of int64 range: '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  // ERANGE covers both overflow (±HUGE_VAL) and underflow (denormal or
  // zero); only overflow loses the value's magnitude entirely.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::OutOfRange("number out of double range: '" + text + "'");
  }
  return v;
}

std::string NumberedName(const char* prefix, long long n) {
  std::string name(prefix);
  name += std::to_string(n);
  return name;
}

}  // namespace sitstats
