#ifndef SITSTATS_COMMON_CANCELLATION_H_
#define SITSTATS_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sitstats {

namespace internal {
struct CancellationState;
}  // namespace internal

/// Read side of a cooperative cancellation signal. Tokens are cheap,
/// copyable handles onto shared state owned by a CancellationSource; a
/// default-constructed token is never cancelled and costs one null check
/// per poll, so hot loops can take a token unconditionally.
///
/// Long-running loops poll `cancelled()` (two relaxed atomic loads) or
/// `CheckCancelled()` every batch of work; blocking waits use
/// `WaitForCancellation` or the token-aware WaitGroup::Wait, which are
/// woken immediately by Cancel() rather than polling.
class CancellationToken {
 public:
  /// A token that can never be cancelled.
  CancellationToken() = default;

  [[nodiscard]] bool cancelled() const;

  /// OK while live; Status::Cancelled("<what> cancelled") once cancelled.
  /// Sprinkle into Status/Result-returning loops:
  ///   SITSTATS_RETURN_IF_ERROR(cancel.CheckCancelled("sweep scan"));
  Status CheckCancelled(const std::string& what) const;

  /// Blocks until the token is cancelled or `timeout` elapses. Returns
  /// true when woken by cancellation, false on timeout. A token with no
  /// source sleeps the full timeout.
  bool WaitForCancellation(std::chrono::milliseconds timeout) const;

  /// Registers `fn` to run (on the cancelling thread) when the token is
  /// cancelled; runs it inline immediately if already cancelled. Returns a
  /// registration id for RemoveCallback, 0 for sourceless tokens.
  /// Callbacks must be fast and must not call back into the token.
  uint64_t OnCancel(std::function<void()> fn) const;
  void RemoveCallback(uint64_t id) const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(
      std::shared_ptr<internal::CancellationState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancellationState> state_;
};

/// Write side: owns the shared state and fires the signal. A source built
/// from a parent token is *linked*: cancelling the parent cancels the
/// child (the executor links its internal first-error source to the
/// caller's request-timeout token this way). Cancel() is idempotent and
/// safe from any thread; it wakes every WaitForCancellation /
/// WaitGroup::Wait(token) waiter and runs registered callbacks once.
class CancellationSource {
 public:
  CancellationSource();
  /// A source whose token is also cancelled whenever `parent` is.
  explicit CancellationSource(const CancellationToken& parent);
  ~CancellationSource();

  CancellationSource(const CancellationSource&) = delete;
  CancellationSource& operator=(const CancellationSource&) = delete;

  void Cancel();
  [[nodiscard]] bool cancelled() const { return token().cancelled(); }
  [[nodiscard]] CancellationToken token() const;

 private:
  std::shared_ptr<internal::CancellationState> state_;
  // Registration on the parent state (unhooked on destruction so a
  // long-lived parent does not accumulate dead children).
  CancellationToken parent_;
  uint64_t parent_registration_ = 0;
};

}  // namespace sitstats

#endif  // SITSTATS_COMMON_CANCELLATION_H_
