#ifndef SITSTATS_COMMON_RESULT_H_
#define SITSTATS_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sitstats {

/// Either a value of type T or a non-OK Status explaining why the value
/// could not be produced. Mirrors arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Histogram> r = BuildHistogram(...);
///   if (!r.ok()) return r.status();
///   Histogram h = std::move(r).ValueOrDie();
/// Like Status, the class is [[nodiscard]]: ignoring a returned Result
/// both drops a possible error and discards the computed value, so the
/// compiler flags it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error and aborts.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the held value; aborts with the status message if this is an
  /// error. Use only after checking ok(), or when failure is a logic error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`.
#define SITSTATS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#define SITSTATS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SITSTATS_ASSIGN_OR_RETURN_NAME(a, b) \
  SITSTATS_ASSIGN_OR_RETURN_CONCAT(a, b)

#define SITSTATS_ASSIGN_OR_RETURN(lhs, expr)                                  \
  SITSTATS_ASSIGN_OR_RETURN_IMPL(                                             \
      SITSTATS_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace sitstats

/// Unprefixed spelling for files that opt in; guarded so inclusion next
/// to another status library (absl, arrow) never redefines theirs.
#ifndef ASSIGN_OR_RETURN
#define ASSIGN_OR_RETURN(lhs, expr) SITSTATS_ASSIGN_OR_RETURN(lhs, expr)
#endif

#endif  // SITSTATS_COMMON_RESULT_H_
