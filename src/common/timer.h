#ifndef SITSTATS_COMMON_TIMER_H_
#define SITSTATS_COMMON_TIMER_H_

#include <chrono>

namespace sitstats {

/// Wall-clock stopwatch used by the scheduler (Hybrid's switch condition)
/// and by the benchmark harnesses.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sitstats

#endif  // SITSTATS_COMMON_TIMER_H_
