#ifndef SITSTATS_COMMON_SYNC_H_
#define SITSTATS_COMMON_SYNC_H_

// Annotated synchronization primitives — the only place in the tree
// allowed to touch <mutex>/<shared_mutex>/<condition_variable> directly
// (enforced by tools/sitstats_lint, rule `raw-sync`).
//
// Every type here carries clang thread-safety-analysis attributes, so a
// clang build with `-Wthread-safety -Werror=thread-safety` (CMake option
// SITSTATS_THREAD_SAFETY, CI job `thread-safety`, locally
// tools/run_thread_safety.sh) proves at compile time that:
//
//   * every field declared GUARDED_BY(mu) is only touched with mu held,
//   * every helper declared REQUIRES(mu) is only called with mu held,
//   * scoped guards release exactly what they acquired.
//
// Under non-clang compilers (the container builds with GCC) the macros
// expand to nothing and the types are zero-cost wrappers over the
// standard primitives, so behavior and TSan coverage are identical.
//
// The capability map — which lock guards which state in each subsystem,
// and the allowed acquisition order — lives in DESIGN.md, section
// "Concurrency contract".

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SITSTATS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SITSTATS_THREAD_ANNOTATION
#define SITSTATS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) SITSTATS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SITSTATS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SITSTATS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SITSTATS_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  SITSTATS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SITSTATS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SITSTATS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SITSTATS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  SITSTATS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SITSTATS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  SITSTATS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SITSTATS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SITSTATS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SITSTATS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SITSTATS_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SITSTATS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  SITSTATS_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) SITSTATS_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SITSTATS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sitstats {

// ---------------------------------------------------------------------------
// Mutex / SharedMutex
// ---------------------------------------------------------------------------

/// Exclusive mutex. Prefer the scoped MutexLock guard; the lowercase
/// BasicLockable surface exists so CondVar (and standard algorithms) can
/// drive it, and is annotated the same.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex: exclusive writers, shared readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------------------
// Scoped guards
// ---------------------------------------------------------------------------

/// RAII exclusive lock over Mutex. Supports early Unlock() and re-Lock()
/// (a "managed" scoped capability), which the deadline loop uses to drop
/// the lock around cancellation callbacks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void Lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// RAII exclusive lock over SharedMutex (writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable bound to Mutex. Waits take the Mutex itself (not
/// the guard) so the REQUIRES contract names the capability the analysis
/// tracks; write wait loops as
///
///   MutexLock lock(mu_);
///   while (!predicate) cv_.Wait(mu_);
///
/// rather than the std predicate-lambda form — clang analyzes lambdas as
/// separate functions, so a captured predicate reading GUARDED_BY fields
/// would warn even though the lock is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires before returning.
  /// The internal unlock/relock happens inside std::condition_variable_any
  /// (a system header, exempt from the analysis), so to the caller the
  /// capability is continuously held.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Waits until notified or `deadline`; returns false on timeout.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  /// Waits until notified or `timeout` elapses; returns false on timeout.
  bool WaitFor(Mutex& mu, std::chrono::steady_clock::duration timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sitstats

#endif  // SITSTATS_COMMON_SYNC_H_
