#ifndef SITSTATS_COMMON_THREAD_POOL_H_
#define SITSTATS_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/sync.h"

namespace sitstats {

/// Small work-stealing thread pool used by the parallel schedule executor
/// (and anything else that wants step-level parallelism).
///
/// Each worker owns a deque: its own tasks pop LIFO from the front (cache
/// locality for nested submissions), idle workers steal FIFO from the back
/// of a victim's deque (oldest task first, which tends to be the largest
/// unit of work). External submissions are distributed round-robin.
///
/// Tasks may Submit() further tasks (the executor releases a schedule
/// step's dependents from the worker that finished it). Completion is
/// signalled by the caller via WaitGroup — the pool itself never blocks on
/// task results. The destructor drains every queued task, then joins.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t index);
  bool TryPop(size_t index, std::function<void()>* task);

  // One queue per worker, heap-allocated so addresses are stable.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake coordination: pending_ counts queued-but-unstarted tasks.
  // Acquisition order: a per-worker queue mu is never held while taking
  // idle_mu_ (Submit takes them strictly in sequence).
  Mutex idle_mu_;
  CondVar idle_cv_;
  size_t pending_ GUARDED_BY(idle_mu_) = 0;
  bool stopping_ GUARDED_BY(idle_mu_) = false;

  std::atomic<size_t> next_queue_{0};
};

/// Go-style wait group: Add() registrations, Done() completions, Wait()
/// blocks until the count returns to zero. Used to join a DAG of pool
/// tasks without giving every task a future. Wait() must not be called
/// from a pool worker that other counted tasks depend on (deadlock).
class WaitGroup {
 public:
  void Add(size_t n = 1);
  /// Decrements the count; wakes waiters at zero. More Done() calls than
  /// Add()ed is a logic error (count would go negative) and is clamped.
  void Done();
  void Wait();

  /// Blocks until the count reaches zero *or* `token` is cancelled —
  /// cancellation wakes the waiter immediately (no polling). Returns true
  /// when the count reached zero, false when woken by cancellation with
  /// work still outstanding. A false return means counted tasks are still
  /// running: the WaitGroup must stay alive until a later Wait() drains
  /// them (the usual pattern cancels the tasks' token so that drain is
  /// prompt).
  bool Wait(const CancellationToken& token);

 private:
  Mutex mu_;
  CondVar cv_;
  int64_t count_ GUARDED_BY(mu_) = 0;
};

/// Resolves a thread-count request: `requested` > 0 wins; otherwise the
/// SITSTATS_THREADS environment variable (if set to a positive integer);
/// otherwise 1 (serial). Results are byte-identical at any thread count,
/// so this only ever changes wall-clock time. Clamped to [1, 256].
size_t ResolveThreadCount(int requested);

}  // namespace sitstats

#endif  // SITSTATS_COMMON_THREAD_POOL_H_
