#include "common/status.h"

namespace sitstats {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool StatusCodeFromString(const std::string& name, StatusCode* code) {
  for (StatusCode candidate :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kIOError,
        StatusCode::kNotImplemented, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded}) {
    if (name == StatusCodeToString(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sitstats
