#include "common/status.h"

namespace sitstats {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sitstats
