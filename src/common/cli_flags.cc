#include "common/cli_flags.h"

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace sitstats {

Result<CliFlags> CliFlags::Parse(int argc, char** argv, int start,
                                 const CliParseOptions& options) {
  SITSTATS_FAULT_SITE("cli.flags.parse");
  CliFlags flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (options.max_positional >= 0 &&
          flags.positional_.size() >=
              static_cast<size_t>(options.max_positional)) {
        return Status::InvalidArgument("unexpected argument " + arg);
      }
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    std::string key;
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      key = arg.substr(2);
      if (options.boolean_keys.count(key) != 0) {
        flags.booleans_.insert(key);
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + arg + " needs a value");
      }
      value = argv[++i];
    }
    if (options.boolean_keys.count(key) != 0) {
      return Status::InvalidArgument("flag --" + key + " takes no value");
    }
    if (options.repeated_keys.count(key) != 0) {
      flags.repeated_[key].push_back(std::move(value));
    } else {
      flags.values_[key] = std::move(value);
    }
  }
  return flags;
}

std::string CliFlags::Get(const std::string& key,
                          const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> CliFlags::GetInt(const std::string& key,
                                 int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  SITSTATS_FAULT_SITE("cli.flags.value");
  Result<int64_t> parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + key + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<double> CliFlags::GetDouble(const std::string& key,
                                   double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  SITSTATS_FAULT_SITE("cli.flags.value");
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + key + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

bool CliFlags::GetBool(const std::string& key) const {
  return booleans_.count(key) != 0;
}

const std::vector<std::string>& CliFlags::Repeated(
    const std::string& key) const {
  static const std::vector<std::string> kEmpty;
  auto it = repeated_.find(key);
  return it == repeated_.end() ? kEmpty : it->second;
}

bool CliFlags::Has(const std::string& key) const {
  return values_.count(key) != 0 || booleans_.count(key) != 0 ||
         repeated_.count(key) != 0;
}

}  // namespace sitstats
