#ifndef SITSTATS_COMMON_RNG_H_
#define SITSTATS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string_view>

namespace sitstats {

/// FNV-1a over the bytes of `text`. Stable across platforms/runs — used
/// for deriving named RNG streams, not for hash tables.
uint64_t HashString64(std::string_view text);

/// Finalizer of the SplitMix64 generator: a cheap, high-quality 64-bit
/// mixer (every input bit affects every output bit).
uint64_t MixSeed64(uint64_t x);

/// Derives the seed of an independent, named random stream from a base
/// seed: MixSeed64(base_seed ^ HashString64(name)).
///
/// Every randomized consumer that can run in a batch (one RNG stream per
/// SIT, per worker, ...) seeds itself with its *name* rather than drawing
/// from a shared generator, so results are byte-identical no matter how
/// many other consumers run, in what order, or on how many threads.
uint64_t DeriveStreamSeed(uint64_t base_seed, std::string_view name);

/// Deterministic pseudo-random number generator used throughout the library.
///
/// Every randomized component (data generation, sampling, workload
/// generation) takes an explicit Rng so experiments are reproducible from a
/// single seed. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Uniform double in [0, 1).
  double NextDouble() { return UniformDouble(0.0, 1.0); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Raw 64-bit output (for seeding child generators).
  uint64_t NextUint64() { return engine_(); }

  /// Forks an independent child generator; advancing the child does not
  /// perturb the parent beyond the single draw used to seed it.
  Rng Fork() { return Rng(NextUint64()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sitstats

#endif  // SITSTATS_COMMON_RNG_H_
