#include "common/thread_pool.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace sitstats {

namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Lets Submit() from inside a task push to the submitting worker's own
// queue instead of round-robining.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(idle_mu_);
    stopping_ = true;
  }
  idle_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SITSTATS_CHECK(task != nullptr);
  size_t index;
  if (tl_pool == this) {
    index = tl_worker_index;  // nested submit: keep it local, steal balances
  } else {
    index = next_queue_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
  }
  {
    MutexLock lock(queues_[index]->mu);
    queues_[index]->tasks.push_front(std::move(task));
  }
  {
    MutexLock lock(idle_mu_);
    ++pending_;
  }
  idle_cv_.NotifyOne();
}

bool ThreadPool::TryPop(size_t index, std::function<void()>* task) {
  // Own queue first (front = most recently submitted here).
  {
    WorkerQueue& own = *queues_[index];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of someone else's queue.
  for (size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& victim = *queues_[(index + off) % queues_.size()];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(idle_mu_);
      // Explicit wait loop (not the predicate-lambda form): the analysis
      // treats lambdas as separate functions, so guarded reads stay here
      // where idle_mu_ is visibly held.
      while (pending_ == 0 && !stopping_) idle_cv_.Wait(idle_mu_);
      if (pending_ == 0 && stopping_) return;
      // A task is queued somewhere; claim the ticket before releasing the
      // lock so other sleepers don't chase the same task.
      --pending_;
    }
    // The ticket guarantees some queue holds a task, but a neighbour may
    // grab it between our unlock and TryPop; spin across queues until the
    // claimed task is found.
    while (!TryPop(index, &task)) {
      std::this_thread::yield();
    }
    task();
  }
}

void WaitGroup::Add(size_t n) {
  MutexLock lock(mu_);
  count_ += static_cast<int64_t>(n);
}

void WaitGroup::Done() {
  MutexLock lock(mu_);
  if (count_ > 0) --count_;
  // Notify while still holding the lock: Wait() cannot return (and the
  // caller cannot destroy this WaitGroup) until the lock is released, so
  // the broadcast never touches a dead condition variable.
  if (count_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(mu_);
  while (count_ != 0) cv_.Wait(mu_);
}

bool WaitGroup::Wait(const CancellationToken& token) {
  // The cancel callback broadcasts on our cv so a Cancel() from any thread
  // wakes this waiter immediately. Taking mu_ inside the callback orders
  // the notify against the predicate check below (no lost wakeup); the
  // registration is removed before returning, so the callback never
  // outlives this WaitGroup.
  uint64_t registration = token.OnCancel([this] {
    MutexLock lock(mu_);
    cv_.NotifyAll();
  });
  bool drained;
  {
    MutexLock lock(mu_);
    while (count_ != 0 && !token.cancelled()) cv_.Wait(mu_);
    drained = count_ == 0;
  }
  token.RemoveCallback(registration);
  return drained;
}

size_t ResolveThreadCount(int requested) {
  long value = requested;
  if (value <= 0) {
    const char* env = std::getenv("SITSTATS_THREADS");
    if (env != nullptr && *env != '\0') {
      // A typo'd SITSTATS_THREADS must not silently serialize ("8x" -> 8
      // would be worse, but "eight" -> 0 is still surprising): warn once
      // per lookup and fall back to the serial default.
      errno = 0;
      char* end = nullptr;
      value = std::strtol(env, &end, 10);
      if (end == env || *end != '\0' || errno == ERANGE) {
        SITSTATS_LOG(kWarning) << "ignoring malformed SITSTATS_THREADS='"
                               << env << "'; using 1 thread";
        value = 0;
      }
    } else {
      value = 0;
    }
  }
  if (value <= 0) return 1;
  if (value > 256) return 256;
  return static_cast<size_t>(value);
}

}  // namespace sitstats
