#include "common/fault_injection.h"

#include "common/logging.h"

namespace sitstats {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, uint64_t ordinal,
                        Status status) {
  SITSTATS_CHECK(!status.ok()) << "cannot inject an OK status";
  SITSTATS_CHECK(ordinal > 0) << "fault ordinals are 1-based";
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = false;
  armed_ = true;
  fired_ = false;
  armed_site_ = site;
  armed_ordinal_ = ordinal;
  injected_status_ = std::move(status);
  counts_.clear();
  faults_injected_.store(0, std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_release);
  counting_ = false;
  armed_ = false;
  fired_ = false;
  armed_site_.clear();
  armed_ordinal_ = 0;
  counts_.clear();
}

void FaultInjector::StartCounting() {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = true;
  armed_ = false;
  fired_ = false;
  counts_.clear();
  faults_injected_.store(0, std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

FaultInjector::SiteCounts FaultInjector::StopCounting() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_release);
  counting_ = false;
  SiteCounts counts = std::move(counts_);
  counts_.clear();
  return counts;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

Status FaultInjector::MaybeFail(const char* site) {
  // Idle fast path: one relaxed load, no lock, no allocation.
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (counting_) {
    ++counts_[site];
    return Status::OK();
  }
  if (!armed_ || fired_) return Status::OK();
  if (armed_site_ != site) return Status::OK();
  uint64_t hit = ++counts_[site];
  if (hit != armed_ordinal_) return Status::OK();
  fired_ = true;
  faults_injected_.fetch_add(1, std::memory_order_acq_rel);
  return injected_status_;
}

}  // namespace sitstats
