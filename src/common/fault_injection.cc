#include "common/fault_injection.h"

#include "common/logging.h"

namespace sitstats {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, uint64_t ordinal,
                        Status status) {
  SITSTATS_CHECK(!status.ok()) << "cannot inject an OK status";
  SITSTATS_CHECK(ordinal > 0) << "fault ordinals are 1-based";
  MutexLock lock(mu_);
  counting_ = false;
  armed_ = true;
  fired_ = false;
  armed_site_ = site;
  armed_ordinal_ = ordinal;
  injected_status_ = std::move(status);
  counts_.clear();
  faults_injected_.store(0, std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

void FaultInjector::ArmAllocationFailure(const std::string& site,
                                         uint64_t ordinal,
                                         const std::string& detail) {
  std::string message = "injected allocation failure at " + site;
  if (!detail.empty()) message += ": " + detail;
  Arm(site, ordinal, Status::ResourceExhausted(message));
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  active_.store(false, std::memory_order_release);
  counting_ = false;
  armed_ = false;
  fired_ = false;
  armed_site_.clear();
  armed_ordinal_ = 0;
  counts_.clear();
}

void FaultInjector::StartCounting() {
  MutexLock lock(mu_);
  counting_ = true;
  armed_ = false;
  fired_ = false;
  counts_.clear();
  faults_injected_.store(0, std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

FaultInjector::SiteCounts FaultInjector::StopCounting() {
  MutexLock lock(mu_);
  active_.store(false, std::memory_order_release);
  counting_ = false;
  SiteCounts counts = std::move(counts_);
  counts_.clear();
  return counts;
}

bool FaultInjector::armed() const {
  MutexLock lock(mu_);
  return armed_;
}

Status FaultInjector::MaybeFailLocked(const char* site) {
  if (counting_) {
    ++counts_[site];
    return Status::OK();
  }
  if (!armed_ || fired_) return Status::OK();
  if (armed_site_ != site) return Status::OK();
  uint64_t hit = ++counts_[site];
  if (hit != armed_ordinal_) return Status::OK();
  fired_ = true;
  faults_injected_.fetch_add(1, std::memory_order_acq_rel);
  return injected_status_;
}

Status FaultInjector::MaybeFail(const char* site) {
  // Idle fast path: one relaxed load, no lock, no allocation.
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  MutexLock lock(mu_);
  return MaybeFailLocked(site);
}

Status FaultInjector::MaybeFailAlloc(const char* site, uint64_t bytes) {
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  Status status;
  {
    MutexLock lock(mu_);
    status = MaybeFailLocked(site);
  }
  if (status.ok() || status.code() != StatusCode::kResourceExhausted) {
    return status;
  }
  return Status::ResourceExhausted(status.message() + " (requested " +
                                   std::to_string(bytes) + " bytes)");
}

}  // namespace sitstats
