#include "common/logging.h"

#include <cstdlib>

namespace sitstats {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : LogMessage(LogLevel::kError, file, line) {
  fatal_ = true;
}

}  // namespace internal
}  // namespace sitstats
