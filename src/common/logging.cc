#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sitstats {

namespace {

LogLevel InitialLogLevel() {
  const char* env = std::getenv("SITSTATS_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

std::atomic<LogLevel> g_log_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One fwrite per line: stdio locks the stream per call, so concurrent
    // log lines never interleave mid-line.
    std::string line = stream_.str();
    line.push_back('\n');
    // Best effort: a logging failure has nowhere to report itself.
    (void)std::fwrite(line.data(), 1, line.size(), stderr);
    (void)std::fflush(stderr);
  }
  if (fatal_) {
    std::abort();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : LogMessage(LogLevel::kError, file, line) {
  fatal_ = true;
}

}  // namespace internal
}  // namespace sitstats
