#ifndef SITSTATS_COMMON_STRING_UTIL_H_
#define SITSTATS_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace sitstats {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the character `sep`; no trimming, empty fields preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Formats a double with `precision` significant decimal digits.
std::string FormatDouble(double value, int precision = 4);

}  // namespace sitstats

#endif  // SITSTATS_COMMON_STRING_UTIL_H_
