#ifndef SITSTATS_COMMON_STRING_UTIL_H_
#define SITSTATS_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace sitstats {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the character `sep`; no trimming, empty fields preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Formats a double with `precision` significant decimal digits.
std::string FormatDouble(double value, int precision = 4);

/// `prefix` followed by the decimal rendering of `n` ("T", 3 -> "T3").
/// Use instead of `"T" + std::to_string(n)`: that spelling trips GCC 12's
/// -Wrestrict false positive (PR105651) once inlined at -O2, which the
/// opt-in -Werror build turns fatal.
std::string NumberedName(const char* prefix, long long n);

}  // namespace sitstats

#endif  // SITSTATS_COMMON_STRING_UTIL_H_
