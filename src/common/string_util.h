#ifndef SITSTATS_COMMON_STRING_UTIL_H_
#define SITSTATS_COMMON_STRING_UTIL_H_

#include <cstdint>

#include <string>
#include <vector>

#include "common/result.h"

namespace sitstats {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the character `sep`; no trimming, empty fields preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Formats a double with `precision` significant decimal digits.
std::string FormatDouble(double value, int precision = 4);

/// Parses the *entire* string as a base-10 int64. Unlike atoll, trailing
/// garbage ("12x"), an empty string, and out-of-range magnitudes are
/// errors rather than silent zeros / clamps.
Result<int64_t> ParseInt64(const std::string& text);

/// Parses the *entire* string as a double (strtod grammar: decimal,
/// scientific, inf, nan). Trailing garbage, an empty string, and overflow
/// to ±infinity are errors.
Result<double> ParseDouble(const std::string& text);

/// `prefix` followed by the decimal rendering of `n` ("T", 3 -> "T3").
/// Use instead of `"T" + std::to_string(n)`: that spelling trips GCC 12's
/// -Wrestrict false positive (PR105651) once inlined at -O2, which the
/// opt-in -Werror build turns fatal.
std::string NumberedName(const char* prefix, long long n);

}  // namespace sitstats

#endif  // SITSTATS_COMMON_STRING_UTIL_H_
