#include "common/rng.h"

#include "common/logging.h"

namespace sitstats {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SITSTATS_CHECK(lo <= hi) << "UniformInt with lo=" << lo << " hi=" << hi;
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

uint64_t HashString64(std::string_view text) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (char c : text) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

uint64_t MixSeed64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

uint64_t DeriveStreamSeed(uint64_t base_seed, std::string_view name) {
  return MixSeed64(base_seed ^ HashString64(name));
}

}  // namespace sitstats
