#include "common/rng.h"

#include "common/logging.h"

namespace sitstats {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SITSTATS_CHECK(lo <= hi) << "UniformInt with lo=" << lo << " hi=" << hi;
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace sitstats
