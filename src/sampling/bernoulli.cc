#include "sampling/bernoulli.h"

#include "sampling/reservoir.h"

namespace sitstats {

std::vector<double> BernoulliSample(const std::vector<double>& values,
                                    double rate, Rng* rng) {
  std::vector<double> out;
  if (rate <= 0.0) return out;
  if (rate >= 1.0) return values;
  out.reserve(static_cast<size_t>(static_cast<double>(values.size()) * rate) +
              16);
  for (double v : values) {
    if (rng->Bernoulli(rate)) out.push_back(v);
  }
  return out;
}

std::vector<double> SampleWithoutReplacement(const std::vector<double>& values,
                                             size_t k, Rng* rng) {
  if (k == 0) return {};
  if (k >= values.size()) return values;
  ReservoirSampler sampler(k, rng);
  for (double v : values) sampler.Add(v);
  return sampler.sample();
}

}  // namespace sitstats
