#include "sampling/bernoulli.h"

#include "sampling/reservoir.h"

namespace sitstats {

std::vector<double> BernoulliSample(const std::vector<double>& values,
                                    double rate, Rng* rng) {
  std::vector<double> out;
  BernoulliSampleAppend(values.data(), values.size(), rate, rng, &out);
  return out;
}

void BernoulliSampleAppend(const double* values, size_t n, double rate,
                           Rng* rng, std::vector<double>* out) {
  // `!(rate > 0.0)` rather than `rate <= 0.0`: a NaN rate fails both
  // orderings, so the latter would fall through to the reserve below and
  // compute `size * NaN` — casting that to size_t is undefined behavior.
  // NaN keeps nothing, matching SampleSize's [0, num_rows] clamp (rate=0
  // and NaN both clamp to an empty sample there).
  if (!(rate > 0.0)) return;
  if (rate >= 1.0) {
    out->insert(out->end(), values, values + n);
    return;
  }
  out->reserve(out->size() +
               static_cast<size_t>(static_cast<double>(n) * rate) + 16);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(rate)) out->push_back(values[i]);
  }
}

std::vector<double> SampleWithoutReplacement(const std::vector<double>& values,
                                             size_t k, Rng* rng) {
  if (k == 0) return {};
  if (k >= values.size()) return values;
  ReservoirSampler sampler(k, rng);
  for (double v : values) sampler.Add(v);
  return sampler.sample();
}

}  // namespace sitstats
