#include "sampling/reservoir.h"

#include <math.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace sitstats {

namespace {

/// Thread-safe log-gamma. glibc's lgamma writes the process-global
/// `signgam`, so concurrent reservoir samplers (parallel schedule steps)
/// race through std::lgamma; lgamma_r is the reentrant form.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

ReservoirSampler::ReservoirSampler(size_t capacity, Rng* rng)
    : capacity_(capacity), rng_(rng) {
  SITSTATS_CHECK(capacity_ > 0) << "reservoir capacity must be positive";
  SITSTATS_CHECK(rng_ != nullptr);
  sample_.reserve(capacity_);
}

Result<ReservoirSampler> ReservoirSampler::Create(size_t capacity,
                                                  Rng* rng) {
  SITSTATS_FAULT_SITE("sampling.reservoir.create");
  if (capacity == 0) {
    return Status::InvalidArgument("reservoir capacity must be positive");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("reservoir sampler needs a random stream");
  }
  // The constructor reserves the full reservoir up front; model that
  // reservation failing before committing to it.
  SITSTATS_OOM_SITE("oom.sampling.reservoir", capacity * sizeof(double));
  return ReservoirSampler(capacity, rng);
}

void ReservoirSampler::Add(double value) {
  ++stream_size_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  // Element i (1-based) replaces a random slot with probability k/i.
  uint64_t pos = static_cast<uint64_t>(
      rng_->UniformInt(0, static_cast<int64_t>(stream_size_) - 1));
  if (pos < capacity_) {
    sample_[static_cast<size_t>(pos)] = value;
  }
}

void ReservoirSampler::AddBatch(std::span<const double> values) {
  size_t i = 0;
  if (sample_.size() < capacity_) {
    const size_t take = std::min(values.size(), capacity_ - sample_.size());
    sample_.insert(sample_.end(), values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(take));
    stream_size_ += take;
    i = take;
  }
  for (; i < values.size(); ++i) Add(values[i]);
}

void ReservoirSampler::AddRepeated(double value, uint64_t count) {
  // Fill phase: plain adds until the reservoir is full.
  while (count > 0 && sample_.size() < capacity_) {
    Add(value);
    --count;
  }
  if (count == 0) return;

  if (count <= 64) {
    // Short runs: per-element Bernoulli is cheaper than skip sampling.
    for (uint64_t j = 0; j < count; ++j) {
      ++stream_size_;
      double p = static_cast<double>(capacity_) /
                 static_cast<double>(stream_size_);
      if (rng_->Bernoulli(p)) {
        int64_t slot =
            rng_->UniformInt(0, static_cast<int64_t>(capacity_) - 1);
        sample_[static_cast<size_t>(slot)] = value;
      }
    }
    return;
  }

  // Long runs (join multiplicities can reach billions): jump directly from
  // one replacement event to the next. With the reservoir full at stream
  // position t, the probability that none of the next s elements replaces
  // a slot is
  //   Q(s) = prod_{i=t+1}^{t+s} (1 - c/i)
  //        = exp( lgamma(t+s+1-c) - lgamma(t+1-c)
  //             - lgamma(t+s+1)   + lgamma(t+1) ),
  // so the skip length is found by binary-searching the smallest s with
  // Q(s) < u for u ~ U(0,1). Expected replacements for a run of n elements
  // are c * ln((t+n)/t), independent of n's magnitude.
  const double c = static_cast<double>(capacity_);
  uint64_t remaining = count;
  while (remaining > 0) {
    const double t = static_cast<double>(stream_size_);
    double u = rng_->NextDouble();
    if (u <= 0.0) u = 1e-300;
    const double log_u = std::log(u);

    uint64_t next = 0;  // offset (1-based) of the next replacement, 0 = none
    if (t >= 64.0 * c) {
      // Large positions: the exact lgamma formula below suffers
      // catastrophic cancellation (its terms reach ~1e15 while the answer
      // is O(1)), so invert the continuous approximation
      //   log Q(s) = -c * ln((t+s-c+.5)/(t-c+.5))        (error O(c/t))
      // in closed form.
      double base = t - c + 0.5;
      double s_real = base * std::expm1(-log_u / c);
      if (s_real >= static_cast<double>(remaining)) {
        next = 0;
      } else {
        next = static_cast<uint64_t>(std::floor(s_real)) + 1;
        if (next > remaining) next = 0;
      }
    } else {
      // Small positions: exact inversion of
      //   Q(s) = prod_{i=t+1}^{t+s} (1 - c/i)
      //        = exp(lg(t+s+1-c) - lg(t+1-c) - lg(t+s+1) + lg(t+1)).
      auto log_q = [&](uint64_t s) {
        double sd = static_cast<double>(s);
        return LogGamma(t + sd + 1.0 - c) - LogGamma(t + 1.0 - c) -
               LogGamma(t + sd + 1.0) + LogGamma(t + 1.0);
      };
      if (log_q(remaining) >= log_u) {
        next = 0;
      } else {
        // Smallest s in [1, remaining] with log Q(s) < log u.
        uint64_t lo = 0;
        uint64_t hi = remaining;  // log_q(hi) < log_u established above
        while (lo < hi) {
          uint64_t mid = lo + (hi - lo) / 2;
          if (log_q(mid) < log_u) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        next = lo;
      }
    }

    if (next == 0) {
      // No replacement in the rest of the run.
      stream_size_ += remaining;
      return;
    }
    stream_size_ += next;  // next-1 skipped elements + the replacing one
    remaining -= next;
    int64_t slot = rng_->UniformInt(0, static_cast<int64_t>(capacity_) - 1);
    sample_[static_cast<size_t>(slot)] = value;
  }
}

void ReservoirSampler::Reset() {
  sample_.clear();
  stream_size_ = 0;
}

}  // namespace sitstats
