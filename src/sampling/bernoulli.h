#ifndef SITSTATS_SAMPLING_BERNOULLI_H_
#define SITSTATS_SAMPLING_BERNOULLI_H_

#include <vector>

#include "common/rng.h"

namespace sitstats {

/// Row-level Bernoulli sampling: each element of `values` is kept
/// independently with probability `rate`. Used to build approximate
/// base-table histograms (the "sampling assumption" context).
///
/// Rate boundaries match SampleSize's [0, num_rows] clamp: rate <= 0,
/// denormals that round to nothing, and NaN keep no elements; rate >= 1
/// keeps everything (and consumes no randomness).
std::vector<double> BernoulliSample(const std::vector<double>& values,
                                    double rate, Rng* rng);

/// Batched form over a contiguous span: appends the kept elements of
/// `values[0..n)` to `out`. Same boundary semantics and, fed the same rng,
/// the same accept set as BernoulliSample over the concatenated input.
void BernoulliSampleAppend(const double* values, size_t n, double rate,
                           Rng* rng, std::vector<double>* out);

/// Draws a uniform sample *without replacement* of exactly
/// min(k, values.size()) elements via a single reservoir pass.
std::vector<double> SampleWithoutReplacement(const std::vector<double>& values,
                                             size_t k, Rng* rng);

}  // namespace sitstats

#endif  // SITSTATS_SAMPLING_BERNOULLI_H_
