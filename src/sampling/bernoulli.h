#ifndef SITSTATS_SAMPLING_BERNOULLI_H_
#define SITSTATS_SAMPLING_BERNOULLI_H_

#include <vector>

#include "common/rng.h"

namespace sitstats {

/// Row-level Bernoulli sampling: each element of `values` is kept
/// independently with probability `rate`. Used to build approximate
/// base-table histograms (the "sampling assumption" context).
std::vector<double> BernoulliSample(const std::vector<double>& values,
                                    double rate, Rng* rng);

/// Draws a uniform sample *without replacement* of exactly
/// min(k, values.size()) elements via a single reservoir pass.
std::vector<double> SampleWithoutReplacement(const std::vector<double>& values,
                                             size_t k, Rng* rng);

}  // namespace sitstats

#endif  // SITSTATS_SAMPLING_BERNOULLI_H_
