#ifndef SITSTATS_SAMPLING_RESERVOIR_H_
#define SITSTATS_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace sitstats {

/// One-pass uniform reservoir sampler (Vitter's Algorithm R, [19]).
///
/// Sweep streams the approximated join projection — conceptually "n copies
/// of a_i" per scanned tuple — through one of these (step 4 in Figure 2 of
/// the paper), so the temporary table is never materialized. AddRepeated
/// processes a run of equal values in O(expected replacements) instead of
/// n individual offers.
class ReservoirSampler {
 public:
  /// `capacity`: maximum sample size (> 0). `rng` is borrowed and must
  /// outlive the sampler.
  ReservoirSampler(size_t capacity, Rng* rng);

  /// Fallible construction: rejects capacity == 0 or a null rng with a
  /// Status instead of aborting, and carries the sampling layer's
  /// fault-injection site ("sampling.reservoir.create"). Library code that
  /// can propagate errors (the sweep scan) uses this; the constructor
  /// remains for contexts where a violation is a programming error.
  static Result<ReservoirSampler> Create(size_t capacity, Rng* rng);

  /// Offers one stream element.
  void Add(double value);

  /// Offers `count` consecutive copies of `value` (equivalent to calling
  /// Add(value) `count` times, with identical distribution).
  void AddRepeated(double value, uint64_t count);

  /// Offers every element of `values` in order. Draw-for-draw identical to
  /// calling Add per element — the fill phase consumes no randomness, so
  /// it is bulk-appended — which keeps samples byte-identical between the
  /// batched and row-at-a-time sweep paths.
  void AddBatch(std::span<const double> values);

  /// Number of stream elements offered so far.
  uint64_t stream_size() const { return stream_size_; }

  /// The current sample (size = min(capacity, stream_size)).
  const std::vector<double>& sample() const { return sample_; }
  size_t capacity() const { return capacity_; }

  /// Clears the sample and stream counter for reuse.
  void Reset();

 private:
  size_t capacity_;
  Rng* rng_;
  std::vector<double> sample_;
  uint64_t stream_size_ = 0;
};

}  // namespace sitstats

#endif  // SITSTATS_SAMPLING_RESERVOIR_H_
