#ifndef SITSTATS_SIT_CREATOR_H_
#define SITSTATS_SIT_CREATOR_H_

#include "common/cancellation.h"
#include "common/result.h"
#include "common/rng.h"
#include "sit/base_stats.h"
#include "sit/m_oracle.h"
#include "sit/sit.h"
#include "storage/catalog.h"

namespace sitstats {

/// Options controlling how a SIT is created.
struct SitBuildOptions {
  SweepVariant variant = SweepVariant::kSweep;
  /// Reservoir sampling rate relative to the scanned table's size (the
  /// paper uses 10%). Ignored by the no-sampling variants.
  double sampling_rate = 0.1;
  size_t min_sample_size = 100;
  /// Bucketing of the produced SIT and of intermediate SITs.
  HistogramSpec histogram_spec;
  /// Bucket-alignment handling of the histogram m-Oracle (ablation knob;
  /// keep the default for accurate results).
  ContainmentMode containment_mode = ContainmentMode::kDensityNormalized;
  /// Base seed for sampling and randomized rounding. Each SIT draws from
  /// its own stream seeded with DeriveStreamSeed(seed, descriptor name) —
  /// see SitStreamSeed — so the same descriptor yields the same statistic
  /// whether built alone, in any batch, or on any number of threads.
  uint64_t seed = 42;
  /// Cooperative cancellation, polled inside every sweep scan's row loop:
  /// a cancelled token aborts the build promptly with Status::Cancelled.
  /// Server request timeouts ride in on this. Default: never cancelled.
  CancellationToken cancel;
};

/// Seed of `descriptor`'s private random stream under base seed `seed`:
/// DeriveStreamSeed(seed, descriptor.ToString()). CreateSit and the
/// schedule executor both seed from this, which is what makes solo and
/// batched builds of the same SIT byte-identical.
uint64_t SitStreamSeed(uint64_t seed, const SitDescriptor& descriptor);

/// Creates one SIT over an acyclic-join generating query, dispatching on
/// options.variant:
///
///  - kSweep / kSweepIndex / kSweepFull / kSweepExact run the post-order
///    join-tree algorithm of Section 3.2: leaves contribute base-table
///    statistics (histograms for the approximating oracles, indexes for
///    the exact ones), every internal node is one sequential scan that
///    produces the intermediate SIT over its parent-join column, and the
///    root scan produces the requested SIT.
///  - kHistSit performs no scans at all: it propagates base-table
///    histograms through the join using the containment assumption for
///    join cardinalities and the independence assumption for scaling —
///    the traditional optimizer estimate that SITs are designed to
///    replace.
///
/// `base_stats` supplies (and caches) base-table histograms; `catalog` is
/// mutable because the exact variants may build indexes on demand.
Result<Sit> CreateSit(Catalog* catalog, BaseStatsCache* base_stats,
                      const SitDescriptor& descriptor,
                      const SitBuildOptions& options);

}  // namespace sitstats

#endif  // SITSTATS_SIT_CREATOR_H_
