#ifndef SITSTATS_SIT_M_ORACLE_H_
#define SITSTATS_SIT_M_ORACLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "histogram/grid_histogram.h"
#include "histogram/histogram.h"
#include "storage/index.h"
#include "storage/io_stats.h"

namespace sitstats {

/// The m-Oracle of Sweep (Section 3.1): given the join value y of a tuple
/// scanned from table S, estimate the multiplicity of y in the other join
/// operand R — i.e. the number of matches for the tuple in R ⋈ S.
class MultiplicityOracle {
 public:
  virtual ~MultiplicityOracle() = default;

  /// (Expected) number of matching tuples for join value `y`. May be
  /// fractional for approximating oracles.
  virtual double Multiplicity(double y) const = 0;

  /// Multi-column variant for composite join predicates (the scanned
  /// tuple's values for every predicate column, in predicate order).
  /// Single-column oracles ignore everything past the first value.
  virtual double MultiplicityN(const double* values, size_t n) const {
    (void)n;
    return Multiplicity(values[0]);
  }

  /// Number of join columns this oracle consumes (1 unless composite).
  virtual size_t num_columns() const { return 1; }

  /// Batched lookup over columnar input: `columns[c][r]` is row r's value
  /// for predicate column c, and `out[r]` receives that row's multiplicity.
  /// The base implementation loops MultiplicityN; the batched sweep calls
  /// this once per ScanBatch so the per-row cost is one (devirtualizable)
  /// call on the concrete oracle instead of scan-level dispatch per tuple.
  virtual void MultiplicityBatch(const double* const* columns,
                                 size_t num_columns, size_t num_rows,
                                 double* out) const;

  virtual std::string Describe() const = 0;
};

/// How HistogramMOracle compares the two buckets' distinct counts.
enum class ContainmentMode {
  /// The paper's literal formula f_R / max(dv_R, dv_S). Implicitly assumes
  /// the two buckets cover the same range — biased when they do not
  /// (MaxDiff buckets from different columns never align).
  kPaperRaw,
  /// Density-normalized: both distinct counts are first restricted to the
  /// buckets' overlap. Reduces exactly to kPaperRaw for aligned buckets;
  /// the default (see DESIGN.md note 1 and bench_ablation_moracle).
  kDensityNormalized,
};

/// Histogram-based approximating m-Oracle (Section 3.1.1). Uses histograms
/// over R.x (`other_side`) and S.y (`scanned_side`); under the containment
/// and uniform-spread assumptions the expected multiplicity of y is
///
///     f_{R,y} / max(dv_{R,y}, dv_{S,y})
///
/// where f/dv are the frequency/distinct count of the buckets containing y
/// (modulo the ContainmentMode bucket-alignment correction).
/// Values outside the other side's histogram have multiplicity 0.
/// `other_side` may be a base-table histogram or an intermediate SIT (the
/// chain/tree case of Section 3.2).
class HistogramMOracle : public MultiplicityOracle {
 public:
  /// `stats` (optional) is bumped once per lookup.
  HistogramMOracle(Histogram other_side, Histogram scanned_side,
                   IoCounters* stats = nullptr,
                   ContainmentMode mode = ContainmentMode::kDensityNormalized)
      : other_side_(std::move(other_side)),
        scanned_side_(std::move(scanned_side)),
        stats_(stats),
        mode_(mode) {}

  double Multiplicity(double y) const override;
  std::string Describe() const override { return "HistogramMOracle"; }

  const Histogram& other_side() const { return other_side_; }

 private:
  Histogram other_side_;
  Histogram scanned_side_;
  IoCounters* stats_;
  ContainmentMode mode_;
};

/// Exact m-Oracle over a base table: repeated lookups on a sorted index
/// over R.x (the SweepIndex idea). Multiplicities are exact.
class IndexMOracle : public MultiplicityOracle {
 public:
  /// `index` is borrowed and must outlive the oracle.
  IndexMOracle(const SortedIndex* index, IoCounters* stats = nullptr)
      : index_(index), stats_(stats) {}

  double Multiplicity(double y) const override;
  std::string Describe() const override {
    return "IndexMOracle(" + index_->table_name() + "." +
           index_->column_name() + ")";
  }

 private:
  const SortedIndex* index_;
  IoCounters* stats_;
};

/// Approximating m-Oracle for a *composite* (two-predicate) join between
/// the scanned table and a base table, backed by 2D grid histograms over
/// the two join-column pairs. Both grids are built with identical bounds,
/// so cells align and the containment estimate is the per-cell
///   f_R / max(dv_R, dv_S)
/// — the natural 2D generalization of Section 3.1.1. Crucially the joint
/// grid captures correlation *between the two predicates*, which two
/// independent 1D histograms cannot.
class GridMOracle : public MultiplicityOracle {
 public:
  GridMOracle(GridHistogram2D other_side, GridHistogram2D scanned_side,
              IoCounters* stats = nullptr)
      : other_side_(std::move(other_side)),
        scanned_side_(std::move(scanned_side)),
        stats_(stats) {}

  double Multiplicity(double y) const override {
    return MultiplicityN(&y, 1);
  }
  double MultiplicityN(const double* values, size_t n) const override;
  size_t num_columns() const override { return 2; }
  std::string Describe() const override { return "GridMOracle"; }

 private:
  GridHistogram2D other_side_;
  GridHistogram2D scanned_side_;
  IoCounters* stats_;
};

/// Exact m-Oracle over a composite key: a hash map from the byte-encoded
/// tuple of join values to the exact multiplicity. Used by
/// SweepIndex/SweepExact for composite predicates (the composite-key
/// analogue of an index) and buildable directly from base-table columns.
class CompositeExactMOracle : public MultiplicityOracle {
 public:
  /// Encodes a tuple of doubles into the map key.
  static std::string EncodeKey(const double* values, size_t n);

  CompositeExactMOracle(std::unordered_map<std::string, double> counts,
                        size_t columns, IoCounters* stats = nullptr)
      : counts_(std::move(counts)), columns_(columns), stats_(stats) {}

  /// Builds the exact composite-count map over `columns` of `table`.
  static Result<CompositeExactMOracle> BuildFromTable(
      const Table& table, const std::vector<std::string>& columns,
      IoCounters* stats = nullptr);

  double Multiplicity(double y) const override {
    return MultiplicityN(&y, 1);
  }
  double MultiplicityN(const double* values, size_t n) const override;
  size_t num_columns() const override { return columns_; }
  std::string Describe() const override { return "CompositeExactMOracle"; }

 private:
  std::unordered_map<std::string, double> counts_;
  size_t columns_;
  IoCounters* stats_;
};

/// Exact m-Oracle over an *intermediate* join result that was never
/// materialized: a hash map from join value to the total (possibly
/// fractional) multiplicity accumulated during the previous Sweep scan.
/// This generalizes SweepIndex/SweepExact to multi-join generating
/// queries, where the other join operand is not a base table and hence
/// has no index.
class ExactMapMOracle : public MultiplicityOracle {
 public:
  explicit ExactMapMOracle(std::unordered_map<double, double> multiplicities,
                           IoCounters* stats = nullptr)
      : multiplicities_(std::move(multiplicities)), stats_(stats) {}

  double Multiplicity(double y) const override;
  std::string Describe() const override { return "ExactMapMOracle"; }

 private:
  std::unordered_map<double, double> multiplicities_;
  IoCounters* stats_;
};

}  // namespace sitstats

#endif  // SITSTATS_SIT_M_ORACLE_H_
