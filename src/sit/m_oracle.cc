#include "sit/m_oracle.h"

#include <cstring>

#include <algorithm>

#include "storage/table.h"

namespace sitstats {

void MultiplicityOracle::MultiplicityBatch(const double* const* columns,
                                           size_t num_columns,
                                           size_t num_rows,
                                           double* out) const {
  if (num_columns == 1) {
    const double* y = columns[0];
    for (size_t r = 0; r < num_rows; ++r) out[r] = Multiplicity(y[r]);
    return;
  }
  std::vector<double> row(num_columns);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < num_columns; ++c) row[c] = columns[c][r];
    out[r] = MultiplicityN(row.data(), num_columns);
  }
}

double HistogramMOracle::Multiplicity(double y) const {
  if (stats_ != nullptr) stats_->AddHistogramLookups();
  int r_idx = other_side_.FindBucket(y);
  if (r_idx < 0) return 0.0;
  const Bucket& br = other_side_.bucket(static_cast<size_t>(r_idx));
  double dv_r = std::max(br.distinct_values, 1.0);
  int s_idx = scanned_side_.FindBucket(y);
  if (s_idx < 0) {
    // No competing information about the scanned side: y matches one of
    // the dv_R groups.
    return br.frequency / dv_r;
  }
  const Bucket& bs = scanned_side_.bucket(static_cast<size_t>(s_idx));
  double dv_s = std::max(bs.distinct_values, 1.0);
  if (mode_ == ContainmentMode::kPaperRaw) {
    return br.frequency / std::max(dv_r, dv_s);
  }

  // The paper's formula f_R / max(dv_R, dv_S) compares the raw bucket
  // distinct counts, which is only meaningful when the two buckets cover
  // the same range. MaxDiff buckets are not aligned, so we first restrict
  // both distinct counts to the buckets' overlap O (grid density * |O|,
  // floored at one group):
  //   P(y matches) = min(1, n_R / n_S),  multiplicity = (f_R/dv_R) * P.
  // For aligned buckets n_R/n_S = dv_R/dv_S and this reduces exactly to
  // f_R / max(dv_R, dv_S).
  double overlap_lo = std::max(br.lo, bs.lo);
  double overlap_hi = std::min(br.hi, bs.hi);
  double overlap = std::max(overlap_hi - overlap_lo, 0.0);
  auto groups_in_overlap = [overlap](const Bucket& b, double dv) {
    if (b.Width() <= 0.0) return dv;
    return std::max(dv * overlap / b.Width(), 1.0);
  };
  double n_r = groups_in_overlap(br, dv_r);
  double n_s = groups_in_overlap(bs, dv_s);
  double match_probability = std::min(1.0, n_r / n_s);
  return (br.frequency / dv_r) * match_probability;
}

double GridMOracle::MultiplicityN(const double* values, size_t n) const {
  if (stats_ != nullptr) stats_->AddHistogramLookups();
  if (n < 2) return 0.0;
  const GridHistogram2D::Cell* r = other_side_.FindCell(values[0],
                                                        values[1]);
  if (r == nullptr || r->distinct_pairs <= 0.0) return 0.0;
  double dv_r = std::max(r->distinct_pairs, 1.0);
  double dv_s = 1.0;
  const GridHistogram2D::Cell* s =
      scanned_side_.FindCell(values[0], values[1]);
  if (s != nullptr) dv_s = std::max(s->distinct_pairs, 1.0);
  // Cells are aligned by construction (same bounds), so the paper's raw
  // containment formula is unbiased here.
  return r->frequency / std::max(dv_r, dv_s);
}

std::string CompositeExactMOracle::EncodeKey(const double* values,
                                             size_t n) {
  std::string key(n * sizeof(double), '\0');
  std::memcpy(key.data(), values, n * sizeof(double));
  return key;
}

Result<CompositeExactMOracle> CompositeExactMOracle::BuildFromTable(
    const Table& table, const std::vector<std::string>& columns,
    IoCounters* stats) {
  if (columns.empty()) {
    return Status::InvalidArgument("composite oracle needs columns");
  }
  std::vector<const Column*> cols;
  for (const std::string& name : columns) {
    SITSTATS_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
    if (col->type() == ValueType::kString) {
      return Status::InvalidArgument("composite oracle over string column " +
                                     name);
    }
    cols.push_back(col);
  }
  std::unordered_map<std::string, double> counts;
  counts.reserve(table.num_rows());
  std::vector<double> values(cols.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < cols.size(); ++c) {
      values[c] = cols[c]->GetNumeric(row);
    }
    counts[EncodeKey(values.data(), values.size())] += 1.0;
  }
  return CompositeExactMOracle(std::move(counts), cols.size(), stats);
}

double CompositeExactMOracle::MultiplicityN(const double* values,
                                            size_t n) const {
  if (stats_ != nullptr) stats_->AddIndexLookups();
  auto it = counts_.find(EncodeKey(values, n));
  return it == counts_.end() ? 0.0 : it->second;
}

double IndexMOracle::Multiplicity(double y) const {
  if (stats_ != nullptr) stats_->AddIndexLookups();
  return static_cast<double>(index_->Multiplicity(y));
}

double ExactMapMOracle::Multiplicity(double y) const {
  if (stats_ != nullptr) stats_->AddIndexLookups();
  auto it = multiplicities_.find(y);
  return it == multiplicities_.end() ? 0.0 : it->second;
}

}  // namespace sitstats
