#include "sit/base_stats.h"

#include "common/fault_injection.h"
#include "sampling/bernoulli.h"

namespace sitstats {

Result<const Histogram*> BaseStatsCache::GetOrBuild(const Catalog& catalog,
                                                    const std::string& table,
                                                    const std::string& column,
                                                    Rng* rng) {
  auto key = std::make_pair(table, column);
  {
    ReaderLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return &it->second;
  }

  // Build outside the lock: concurrent misses on the same key each build a
  // copy and the first insert wins (histograms over the same column are
  // identical unless base-stats sampling is on, in which case whichever
  // sample wins is cached for everyone — determinism across runs then
  // requires building base stats up front, which the default full-scan
  // mode does implicitly).
  SITSTATS_FAULT_SITE("sit.base_stats.build");
  SITSTATS_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(table));
  SITSTATS_ASSIGN_OR_RETURN(const Column* col, t->GetColumn(column));
  if (col->type() == ValueType::kString) {
    return Status::InvalidArgument("histogram over string column " + table +
                                   "." + column);
  }
  SITSTATS_OOM_SITE("oom.sampling.values", col->size() * sizeof(double));
  std::vector<double> values = col->ToNumericVector();
  Histogram histogram;
  if (options_.sample && !values.empty()) {
    SITSTATS_FAULT_SITE("sampling.bernoulli.sample");
    std::vector<double> sample =
        BernoulliSample(values, options_.sampling_rate, rng);
    if (sample.empty()) sample.push_back(values.front());
    SITSTATS_ASSIGN_OR_RETURN(
        histogram,
        BuildHistogramFromSample(std::move(sample),
                                 static_cast<double>(values.size()),
                                 options_.histogram_spec));
  } else {
    SITSTATS_ASSIGN_OR_RETURN(
        histogram,
        BuildHistogram(std::move(values), options_.histogram_spec));
  }
  SITSTATS_OOM_SITE("oom.base_stats.cache_insert",
                    histogram.buckets().size() * sizeof(Bucket));
  WriterLock lock(mu_);
  auto [pos, inserted] = cache_.emplace(key, std::move(histogram));
  (void)inserted;
  return &pos->second;
}

}  // namespace sitstats
