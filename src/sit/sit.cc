#include "sit/sit.h"

namespace sitstats {

const char* SweepVariantToString(SweepVariant variant) {
  switch (variant) {
    case SweepVariant::kSweep:
      return "Sweep";
    case SweepVariant::kSweepIndex:
      return "SweepIndex";
    case SweepVariant::kSweepFull:
      return "SweepFull";
    case SweepVariant::kSweepExact:
      return "SweepExact";
    case SweepVariant::kHistSit:
      return "Hist-SIT";
  }
  return "?";
}

}  // namespace sitstats
