#ifndef SITSTATS_SIT_BASE_STATS_H_
#define SITSTATS_SIT_BASE_STATS_H_

#include <map>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/sync.h"
#include "common/rng.h"
#include "histogram/builder.h"
#include "storage/catalog.h"

namespace sitstats {

/// How base-table histograms are constructed.
struct BaseStatsOptions {
  HistogramSpec histogram_spec;
  /// If true, base histograms are built from a row sample of the column
  /// (the usual practice in commercial systems — the paper's "sampling
  /// assumption"); otherwise from a full column read.
  bool sample = false;
  double sampling_rate = 0.1;
};

/// Cache of base-table histograms keyed by (table, column). Sweep consults
/// base statistics for every join column of every scanned table; building
/// them once per experiment mirrors a real system's statistics store.
///
/// Thread safety: reads and GetOrBuild are safe concurrently (the parallel
/// schedule executor resolves base histograms from several worker threads).
/// Lookups take a shared lock; a miss builds outside any lock and the
/// first finished build wins — cached pointers are never invalidated by
/// later inserts (node-based map). Clear() must not race with readers
/// holding returned pointers.
class BaseStatsCache {
 public:
  explicit BaseStatsCache(BaseStatsOptions options = {})
      : options_(std::move(options)) {}

  // Movable (the mutex stays with the object, not the contents); moving
  // is not thread-safe — callers must quiesce readers first. The locks
  // below keep the guarded-field contract total, nothing more.
  BaseStatsCache(BaseStatsCache&& other) noexcept
      : options_(std::move(other.options_)) {
    WriterLock other_lock(other.mu_);
    cache_ = std::move(other.cache_);
  }
  BaseStatsCache& operator=(BaseStatsCache&& other) noexcept {
    if (this != &other) {
      options_ = std::move(other.options_);
      WriterLock this_lock(mu_);
      WriterLock other_lock(other.mu_);
      cache_ = std::move(other.cache_);
    }
    return *this;
  }

  /// The histogram over table.column, building (and caching) it on first
  /// request.
  Result<const Histogram*> GetOrBuild(const Catalog& catalog,
                                      const std::string& table,
                                      const std::string& column, Rng* rng);

  /// Drops every cached histogram.
  void Clear() {
    WriterLock lock(mu_);
    cache_.clear();
  }

  size_t size() const {
    ReaderLock lock(mu_);
    return cache_.size();
  }
  const BaseStatsOptions& options() const { return options_; }

 private:
  mutable SharedMutex mu_;
  BaseStatsOptions options_;
  std::map<std::pair<std::string, std::string>, Histogram> cache_
      GUARDED_BY(mu_);
};

}  // namespace sitstats

#endif  // SITSTATS_SIT_BASE_STATS_H_
