#include "sit/sweep_scan.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/fault_injection.h"
#include "sampling/reservoir.h"
#include "storage/scan.h"
#include "storage/temp_store.h"
#include "telemetry/telemetry.h"

namespace sitstats {

namespace {

/// Per-target accumulation state during the scan.
struct TargetState {
  size_t attribute_slot = 0;           // index into the scan projection
  ReservoirSampler* reservoir = nullptr;  // sampling path
  TempValueStore* store = nullptr;        // full path
  Rng* rng = nullptr;                  // this target's random stream
  double fractional_cardinality = 0.0;
  std::unordered_map<double, double> exact_map;
};

}  // namespace

Result<std::vector<SweepOutput>> SweepScanTable(Catalog* catalog,
                                                const SweepScanSpec& spec,
                                                Rng* rng) {
  SITSTATS_FAULT_SITE("sit.sweep.scan");
  if (spec.targets.empty()) {
    return Status::InvalidArgument("sweep scan with no targets");
  }
  // `!(x >= 0)` (not `x < 0`): NaN fails every ordering, and a NaN or
  // negative rate would reach the capacity computation below, where
  // casting ceil(rows * rate) to size_t is undefined behavior.
  if (spec.use_sampling && !(spec.sampling_rate >= 0.0)) {
    return Status::InvalidArgument(
        "sweep sampling rate must be a finite non-negative number");
  }
  for (const SweepJoin& join : spec.joins) {
    if (join.oracle == nullptr) {
      return Status::InvalidArgument("sweep join without an oracle");
    }
    if (join.scan_columns.empty()) {
      return Status::InvalidArgument("sweep join without scan columns");
    }
    if (join.oracle->num_columns() != join.scan_columns.size()) {
      return Status::InvalidArgument(
          "sweep join column count does not match its oracle");
    }
  }
  for (const SweepTarget& target : spec.targets) {
    for (size_t idx : target.join_indices) {
      if (idx >= spec.joins.size()) {
        return Status::InvalidArgument("sweep target join index out of range");
      }
    }
    if (target.rng == nullptr && rng == nullptr && spec.use_sampling) {
      return Status::InvalidArgument("sweep target without a random stream");
    }
  }
  SITSTATS_ASSIGN_OR_RETURN(const Table* table,
                            catalog->GetTable(spec.table));

  // Projection: all join columns, then all target attributes (deduplicated
  // by the column list; slots may alias the same column).
  std::vector<std::string> projection;
  auto slot_of = [&projection](const std::string& column) {
    for (size_t i = 0; i < projection.size(); ++i) {
      if (projection[i] == column) return i;
    }
    projection.push_back(column);
    return projection.size() - 1;
  };
  std::vector<std::vector<size_t>> join_slots;
  join_slots.reserve(spec.joins.size());
  for (const SweepJoin& join : spec.joins) {
    std::vector<size_t> slots;
    for (const std::string& column : join.scan_columns) {
      slots.push_back(slot_of(column));
    }
    join_slots.push_back(std::move(slots));
  }

  // Reservoir capacity is a sample of the *stream* (which multiplicities
  // can make far longer than the table); never 0, even for empty tables
  // with min_sample_size = 0 — the sampler requires positive capacity.
  size_t capacity = std::max(
      spec.min_sample_size,
      static_cast<size_t>(std::ceil(static_cast<double>(table->num_rows()) *
                                    spec.sampling_rate)));
  if (capacity == 0) capacity = 1;

  std::vector<TargetState> states(spec.targets.size());
  std::vector<ReservoirSampler> reservoirs;
  std::vector<TempValueStore> stores;
  reservoirs.reserve(spec.targets.size());
  stores.reserve(spec.targets.size());
  for (size_t t = 0; t < spec.targets.size(); ++t) {
    states[t].attribute_slot = slot_of(spec.targets[t].attribute);
    states[t].rng = spec.targets[t].rng != nullptr ? spec.targets[t].rng : rng;
    if (spec.use_sampling) {
      SITSTATS_ASSIGN_OR_RETURN(
          ReservoirSampler sampler,
          ReservoirSampler::Create(capacity, states[t].rng));
      reservoirs.push_back(std::move(sampler));
      states[t].reservoir = &reservoirs.back();
    } else {
      if (spec.temp_memory_runs > 0) {
        stores.emplace_back(spec.temp_memory_runs);
      } else {
        stores.emplace_back();
      }
      states[t].store = &stores.back();
    }
  }

  // Counter handles resolved once, not per row.
  static telemetry::Counter& rows_swept =
      telemetry::MetricsRegistry::Global().GetCounter("sit.rows_swept");
  static telemetry::Counter& moracle_calls =
      telemetry::MetricsRegistry::Global().GetCounter("sit.moracle_calls");
  static telemetry::Counter& sweep_scans =
      telemetry::MetricsRegistry::Global().GetCounter("sit.sweep_scans");

  telemetry::TraceSpan span("sweep.scan");
  span.AddAttribute("table", spec.table);
  span.AddAttribute("targets", static_cast<double>(spec.targets.size()));
  span.AddAttribute("joins", static_cast<double>(spec.joins.size()));

  // Step 1: the (single, shared) sequential scan, consumed in batches of
  // kScanBatchRows contiguous rows.
  SITSTATS_ASSIGN_OR_RETURN(
      SequentialScan scan,
      SequentialScan::Open(catalog, spec.table, projection));

  // In-batch processing order. Target-major (all of a batch's rows for
  // target 0, then for target 1, ...) keeps each target's work on one
  // reservoir and one accumulator — the cache-friendly, vectorizable
  // order — and is draw-for-draw identical to the row-at-a-time path
  // whenever every drawing target has a *private* Rng: its draw sequence
  // depends only on its own rows, not on interleaving with other targets.
  // If two targets share a stream (both fell back to the scan-level rng,
  // or the caller aliased SweepTarget::rng), the row-at-a-time path
  // interleaves their draws per row, so we process row-major within the
  // batch to preserve byte-identity. The no-sampling path draws nothing
  // and is order-independent per target either way.
  bool row_major_batches = false;
  if (spec.use_sampling) {
    for (size_t a = 0; a < states.size() && !row_major_batches; ++a) {
      for (size_t b = a + 1; b < states.size(); ++b) {
        if (states[a].rng == states[b].rng) {
          row_major_batches = true;
          break;
        }
      }
    }
  }

  // Per-row work for one target, reading the precomputed per-join
  // multiplicities of the current batch.
  std::vector<std::vector<double>> batch_multiplicities(spec.joins.size());
  auto process_row = [&](const SweepTarget& target, TargetState& state,
                         std::span<const double> attr_values,
                         size_t r) -> Status {
    double multiplicity = 1.0;
    for (size_t idx : target.join_indices) {
      multiplicity *= batch_multiplicities[idx][r];
      if (multiplicity == 0.0) break;
    }
    if (multiplicity <= 0.0) return Status::OK();
    double attr_value = attr_values[r];
    state.fractional_cardinality += multiplicity;
    if (target.build_exact_map) {
      state.exact_map[attr_value] += multiplicity;
    }
    // Steps 3-4: append `multiplicity` copies of the attribute value to
    // the conceptual temporary table.
    if (spec.use_sampling) {
      // Unbiased randomized rounding of the fractional multiplicity.
      double floor_m = std::floor(multiplicity);
      uint64_t copies = static_cast<uint64_t>(floor_m);
      if (state.rng->Bernoulli(multiplicity - floor_m)) ++copies;
      if (copies > 0) state.reservoir->AddRepeated(attr_value, copies);
    } else {
      SITSTATS_RETURN_IF_ERROR(state.store->Append(attr_value, multiplicity));
    }
    return Status::OK();
  };

  ScanBatch batch;
  std::vector<const double*> oracle_columns;
  while (scan.NextBatch(&batch)) {
    // Poll the token once per batch: a timeout or first-error abort lands
    // within a few thousand rows of scanning.
    SITSTATS_RETURN_IF_ERROR(spec.cancel.CheckCancelled("sweep scan"));
    const size_t n = batch.num_rows;
    // Step 2, batched: one oracle call per distinct join covers the whole
    // batch, shared across targets.
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      batch_multiplicities[j].resize(n);
      oracle_columns.clear();
      for (size_t slot : join_slots[j]) {
        oracle_columns.push_back(batch.column(slot).data());
      }
      spec.joins[j].oracle->MultiplicityBatch(
          oracle_columns.data(), oracle_columns.size(), n,
          batch_multiplicities[j].data());
    }
    if (row_major_batches) {
      for (size_t r = 0; r < n; ++r) {
        for (size_t t = 0; t < spec.targets.size(); ++t) {
          SITSTATS_RETURN_IF_ERROR(
              process_row(spec.targets[t], states[t],
                          batch.column(states[t].attribute_slot), r));
        }
      }
    } else {
      for (size_t t = 0; t < spec.targets.size(); ++t) {
        const SweepTarget& target = spec.targets[t];
        TargetState& state = states[t];
        std::span<const double> attr_values =
            batch.column(state.attribute_slot);
        for (size_t r = 0; r < n; ++r) {
          SITSTATS_RETURN_IF_ERROR(process_row(target, state, attr_values, r));
        }
      }
    }
  }

  sweep_scans.Increment();
  rows_swept.Increment(scan.num_rows());
  moracle_calls.Increment(scan.num_rows() * spec.joins.size());
  span.AddAttribute("rows", static_cast<double>(scan.num_rows()));

  // Step 5: build the statistic per target.
  SITSTATS_TRACE_SPAN("sweep.build_outputs");
  std::vector<SweepOutput> outputs;
  outputs.reserve(spec.targets.size());
  for (size_t t = 0; t < spec.targets.size(); ++t) {
    SITSTATS_FAULT_SITE("sit.sweep.build_output");
    SITSTATS_RETURN_IF_ERROR(spec.cancel.CheckCancelled("sweep output"));
    TargetState& state = states[t];
    SweepOutput out;
    out.estimated_cardinality = state.fractional_cardinality;
    if (spec.use_sampling) {
      SITSTATS_ASSIGN_OR_RETURN(
          out.histogram,
          BuildHistogramFromSample(state.reservoir->sample(),
                                   state.fractional_cardinality,
                                   spec.histogram_spec));
    } else {
      std::vector<std::pair<double, double>> runs;
      SITSTATS_RETURN_IF_ERROR(state.store->ReadAll(&runs));
      catalog->io_counters().AddTempRowsSpilled(state.store->runs_spilled());
      SITSTATS_ASSIGN_OR_RETURN(
          out.histogram,
          BuildHistogramWeighted(std::move(runs), spec.histogram_spec));
    }
    out.exact_map = std::move(state.exact_map);
    outputs.push_back(std::move(out));
  }
  return outputs;
}

}  // namespace sitstats
