#ifndef SITSTATS_SIT_ORACLE_FACTORY_H_
#define SITSTATS_SIT_ORACLE_FACTORY_H_

#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "query/join_tree.h"
#include "sit/base_stats.h"
#include "sit/m_oracle.h"
#include "sit/sweep_scan.h"
#include "storage/catalog.h"

namespace sitstats {

/// Builds the m-Oracle used when the scan of join-tree node `node_index`
/// evaluates the join towards its child `child_index`.
///
///  - exact = false: a HistogramMOracle whose other side is the child's
///    base histogram (leaf child) or the child's intermediate SIT
///    (`child_output->histogram`), and whose scanned side is the node's
///    base histogram over the join column.
///  - exact = true: an IndexMOracle over a (possibly freshly built) sorted
///    index for leaf children, or an ExactMapMOracle consuming
///    `child_output->exact_map` for internal children.
///
/// `child_output` may be null for leaf children; for internal children it
/// must be the child's SweepOutput and, when exact, its exact_map is moved
/// out (the output cannot be reused).
Result<std::unique_ptr<MultiplicityOracle>> MakeChildOracle(
    Catalog* catalog, BaseStatsCache* base_stats, const JoinTree& tree,
    int node_index, int child_index, SweepOutput* child_output, bool exact,
    Rng* rng,
    ContainmentMode mode = ContainmentMode::kDensityNormalized);

}  // namespace sitstats

#endif  // SITSTATS_SIT_ORACLE_FACTORY_H_
