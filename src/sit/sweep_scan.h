#ifndef SITSTATS_SIT_SWEEP_SCAN_H_
#define SITSTATS_SIT_SWEEP_SCAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/rng.h"
#include "histogram/builder.h"
#include "sit/m_oracle.h"
#include "storage/catalog.h"

namespace sitstats {

/// One join edge evaluated during a sweep scan: the scanned table's join
/// column(s), plus the oracle answering "how many tuples on the other side
/// match these values". Composite equality joins list one column per
/// predicate and require an oracle with a matching num_columns().
struct SweepJoin {
  std::vector<std::string> scan_columns;
  const MultiplicityOracle* oracle = nullptr;
};

/// One statistic to produce from a shared scan. Different targets may use
/// different subsets of the joins (Example 3: a scan of S builds
/// SIT(S.b | R ⋈_{r2=s2} S) and SIT(S.s3 | R ⋈_{r1=s1} S) simultaneously,
/// each with its own join).
struct SweepTarget {
  /// Column of the scanned table whose distribution is collected.
  std::string attribute;
  /// Indices into SweepScanSpec::joins that apply to this target. The
  /// tuple multiplicity is the product of the joins' multiplicities
  /// (Section 3.2's multi-way rule; acyclicity makes the product exact).
  std::vector<size_t> join_indices;
  /// Also accumulate the exact (weighted) multiplicity map over
  /// `attribute` — needed when the *next* sweep step wants an exact
  /// m-Oracle over this intermediate result (SweepIndex / SweepExact).
  bool build_exact_map = false;
  /// Random stream for this target's draws (randomized rounding and
  /// reservoir replacement). Null falls back to the scan-level rng. Shared
  /// scans pass each SIT's own stream here so a target consumes exactly
  /// the draws it would consume in a solo build — that is what makes a SIT
  /// built in a batch byte-identical to the same SIT built alone, at any
  /// thread count.
  Rng* rng = nullptr;
};

/// Parameters of one sequential scan shared by one or more targets.
struct SweepScanSpec {
  std::string table;
  std::vector<SweepJoin> joins;
  std::vector<SweepTarget> targets;
  /// Reservoir capacity = max(min_sample_size, sampling_rate * |table|).
  double sampling_rate = 0.1;
  size_t min_sample_size = 100;
  /// false => stream the full weighted projection through a spillable
  /// temporary store instead of sampling (SweepFull / SweepExact).
  bool use_sampling = true;
  /// In-memory run budget of the temporary store on the full path; 0 keeps
  /// the store's default. Tests shrink it to force the spill path on small
  /// tables.
  size_t temp_memory_runs = 0;
  HistogramSpec histogram_spec;
  /// Cooperative cancellation: the row loop polls this token every batch
  /// of rows and aborts with Status::Cancelled mid-scan. A default token
  /// never cancels. Server request timeouts and the schedule executor's
  /// first-error signal both arrive here — this is what makes an abort
  /// prompt instead of waiting out the scan.
  CancellationToken cancel;
};

/// Result of one target of a sweep scan.
struct SweepOutput {
  /// The SIT statistic over the target attribute.
  Histogram histogram;
  /// Estimated |generating query| — the total (fractional) weight of the
  /// approximated stream.
  double estimated_cardinality = 0.0;
  /// Exact weighted multiplicity map (only if build_exact_map was set).
  std::unordered_map<double, double> exact_map;
};

/// Performs one sequential scan over spec.table and builds every target
/// (steps 1-5 of Figure 2, generalized to shared scans and multi-way
/// joins). Fractional expected multiplicities are converted to integral
/// stream copies by unbiased randomized rounding when sampling; the
/// no-sampling path keeps exact fractional weights.
///
/// `rng` is the fallback random stream for targets that don't carry their
/// own (SweepTarget::rng); it may be null if every target does.
Result<std::vector<SweepOutput>> SweepScanTable(Catalog* catalog,
                                                const SweepScanSpec& spec,
                                                Rng* rng);

}  // namespace sitstats

#endif  // SITSTATS_SIT_SWEEP_SCAN_H_
