#include "sit/serialization.h"

#include <cinttypes>
#include <cstdio>

#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace sitstats {

namespace {

/// Full-precision double formatting (%.17g round-trips IEEE doubles).
std::string FormatExact(double v) {
  char buffer[64];
  (void)std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Reads one line; fails with a contextual message at EOF.
Status ReadLine(std::istringstream* in, const std::string& what,
                std::string* line) {
  if (!std::getline(*in, *line)) {
    return Status::InvalidArgument("unexpected end of input, expected " +
                                   what);
  }
  return Status::OK();
}

Result<double> ParseDouble(const std::string& token,
                           const std::string& what) {
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse " + what + " from '" +
                                   token + "'");
  }
  return value;
}

Result<Histogram> ParseHistogramBody(std::istringstream* in) {
  std::string line;
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "histogram header", &line));
  std::vector<std::string> header = Split(line, ' ');
  if (header.size() != 2 || header[0] != "histogram") {
    return Status::InvalidArgument("bad histogram header: '" + line + "'");
  }
  SITSTATS_ASSIGN_OR_RETURN(double n_raw,
                            ParseDouble(header[1], "bucket count"));
  if (n_raw < 0 || n_raw > 10'000'000) {
    return Status::InvalidArgument("implausible bucket count");
  }
  size_t n = static_cast<size_t>(n_raw);
  std::vector<Bucket> buckets;
  buckets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SITSTATS_RETURN_IF_ERROR(ReadLine(in, "bucket line", &line));
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.size() != 4) {
      return Status::InvalidArgument("bad bucket line: '" + line + "'");
    }
    Bucket b;
    SITSTATS_ASSIGN_OR_RETURN(b.lo, ParseDouble(fields[0], "bucket lo"));
    SITSTATS_ASSIGN_OR_RETURN(b.hi, ParseDouble(fields[1], "bucket hi"));
    SITSTATS_ASSIGN_OR_RETURN(b.frequency,
                              ParseDouble(fields[2], "bucket frequency"));
    SITSTATS_ASSIGN_OR_RETURN(b.distinct_values,
                              ParseDouble(fields[3], "bucket distinct"));
    buckets.push_back(b);
  }
  Histogram histogram(std::move(buckets));
  SITSTATS_RETURN_IF_ERROR(histogram.CheckValid());
  return histogram;
}

void SerializeHistogramBody(const Histogram& histogram, std::string* out) {
  out->append("histogram " + std::to_string(histogram.num_buckets()) + "\n");
  for (size_t i = 0; i < histogram.num_buckets(); ++i) {
    const Bucket& b = histogram.bucket(i);
    out->append(FormatExact(b.lo) + " " + FormatExact(b.hi) + " " +
                FormatExact(b.frequency) + " " +
                FormatExact(b.distinct_values) + "\n");
  }
}

Result<Sit> ParseSitBody(std::istringstream* in) {
  std::string line;
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "sit header", &line));
  if (line != "sit v1") {
    return Status::InvalidArgument("bad sit header: '" + line + "'");
  }
  // attribute <table> <column>
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "attribute line", &line));
  std::vector<std::string> attr = Split(line, ' ');
  if (attr.size() != 3 || attr[0] != "attribute") {
    return Status::InvalidArgument("bad attribute line: '" + line + "'");
  }
  ColumnRef attribute{attr[1], attr[2]};
  // tables <t1> <t2> ...
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "tables line", &line));
  std::vector<std::string> tables = Split(line, ' ');
  if (tables.size() < 2 || tables[0] != "tables") {
    return Status::InvalidArgument("bad tables line: '" + line + "'");
  }
  tables.erase(tables.begin());
  // joins <n> then n lines "join lt lc rt rc"
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "joins line", &line));
  std::vector<std::string> joins_header = Split(line, ' ');
  if (joins_header.size() != 2 || joins_header[0] != "joins") {
    return Status::InvalidArgument("bad joins line: '" + line + "'");
  }
  SITSTATS_ASSIGN_OR_RETURN(double joins_n,
                            ParseDouble(joins_header[1], "join count"));
  std::vector<JoinPredicate> joins;
  for (size_t i = 0; i < static_cast<size_t>(joins_n); ++i) {
    SITSTATS_RETURN_IF_ERROR(ReadLine(in, "join line", &line));
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.size() != 5 || fields[0] != "join") {
      return Status::InvalidArgument("bad join line: '" + line + "'");
    }
    joins.push_back(JoinPredicate{ColumnRef{fields[1], fields[2]},
                                  ColumnRef{fields[3], fields[4]}});
  }
  // variant <name>
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "variant line", &line));
  std::vector<std::string> variant_fields = Split(line, ' ');
  if (variant_fields.size() != 2 || variant_fields[0] != "variant") {
    return Status::InvalidArgument("bad variant line: '" + line + "'");
  }
  SITSTATS_ASSIGN_OR_RETURN(SweepVariant variant,
                            SweepVariantFromString(variant_fields[1]));
  // cardinality <x>
  SITSTATS_RETURN_IF_ERROR(ReadLine(in, "cardinality line", &line));
  std::vector<std::string> card_fields = Split(line, ' ');
  if (card_fields.size() != 2 || card_fields[0] != "cardinality") {
    return Status::InvalidArgument("bad cardinality line: '" + line + "'");
  }
  SITSTATS_ASSIGN_OR_RETURN(double cardinality,
                            ParseDouble(card_fields[1], "cardinality"));

  SITSTATS_ASSIGN_OR_RETURN(GeneratingQuery query,
                            GeneratingQuery::Create(std::move(tables),
                                                    std::move(joins)));
  SITSTATS_ASSIGN_OR_RETURN(Histogram histogram, ParseHistogramBody(in));
  return Sit{SitDescriptor(std::move(attribute), std::move(query)),
             std::move(histogram), variant, cardinality, IoStats{}};
}

void SerializeSitBody(const Sit& sit, std::string* out) {
  out->append("sit v1\n");
  const SitDescriptor& desc = sit.descriptor;
  out->append("attribute " + desc.attribute().table + " " +
              desc.attribute().column + "\n");
  out->append("tables " + Join(desc.query().tables(), " ") + "\n");
  out->append("joins " + std::to_string(desc.query().num_joins()) + "\n");
  for (const JoinPredicate& join : desc.query().joins()) {
    out->append("join " + join.left.table + " " + join.left.column + " " +
                join.right.table + " " + join.right.column + "\n");
  }
  out->append(std::string("variant ") + SweepVariantToString(sit.variant) +
              "\n");
  out->append("cardinality " + FormatExact(sit.estimated_cardinality) +
              "\n");
  SerializeHistogramBody(sit.histogram, out);
}

}  // namespace

Result<SweepVariant> SweepVariantFromString(const std::string& name) {
  for (SweepVariant variant :
       {SweepVariant::kSweep, SweepVariant::kSweepIndex,
        SweepVariant::kSweepFull, SweepVariant::kSweepExact,
        SweepVariant::kHistSit}) {
    if (name == SweepVariantToString(variant)) return variant;
  }
  return Status::InvalidArgument("unknown sweep variant '" + name + "'");
}

std::string SerializeHistogram(const Histogram& histogram) {
  std::string out;
  SerializeHistogramBody(histogram, &out);
  return out;
}

Result<Histogram> DeserializeHistogram(const std::string& text) {
  std::istringstream in(text);
  return ParseHistogramBody(&in);
}

std::string SerializeSit(const Sit& sit) {
  std::string out;
  SerializeSitBody(sit, &out);
  return out;
}

Result<Sit> DeserializeSit(const std::string& text) {
  std::istringstream in(text);
  return ParseSitBody(&in);
}

std::string SerializeSitCatalog(const SitCatalog& catalog) {
  std::string out = "sitcatalog " + std::to_string(catalog.size()) + "\n";
  for (const Sit& sit : catalog.sits()) {
    SerializeSitBody(sit, &out);
  }
  return out;
}

Result<SitCatalog> DeserializeSitCatalog(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  SITSTATS_RETURN_IF_ERROR(ReadLine(&in, "catalog header", &line));
  std::vector<std::string> header = Split(line, ' ');
  if (header.size() != 2 || header[0] != "sitcatalog") {
    return Status::InvalidArgument("bad catalog header: '" + line + "'");
  }
  SITSTATS_ASSIGN_OR_RETURN(double n, ParseDouble(header[1], "sit count"));
  SitCatalog catalog;
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    SITSTATS_ASSIGN_OR_RETURN(Sit sit, ParseSitBody(&in));
    catalog.Add(std::move(sit));
  }
  return catalog;
}

Status SaveSitCatalog(const SitCatalog& catalog, const std::string& path) {
  SITSTATS_FAULT_SITE("sit.serialize.save");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << SerializeSitCatalog(catalog);
  out.flush();
  if (!out) {
    return Status::IOError("write to " + path + " failed");
  }
  return Status::OK();
}

Result<SitCatalog> LoadSitCatalog(const std::string& path) {
  SITSTATS_FAULT_SITE("sit.serialize.load");
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path + " for reading");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return DeserializeSitCatalog(contents.str());
}

}  // namespace sitstats
