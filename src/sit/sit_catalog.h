#ifndef SITSTATS_SIT_SIT_CATALOG_H_
#define SITSTATS_SIT_SIT_CATALOG_H_

#include <vector>

#include "sit/sit.h"

namespace sitstats {

/// The statistics store for SITs. The cardinality-estimation wrapper
/// (Section 2.2) consults it to rewrite sub-plans whose generating query
/// matches an available SIT.
class SitCatalog {
 public:
  /// Registers a SIT. A SIT equivalent to an existing one replaces it.
  void Add(Sit sit);

  /// The SIT over `attribute` whose generating query is equivalent to
  /// `query`, or nullptr.
  const Sit* Find(const ColumnRef& attribute,
                  const GeneratingQuery& query) const;

  const Sit* Find(const SitDescriptor& descriptor) const {
    return Find(descriptor.attribute(), descriptor.query());
  }

  size_t size() const { return sits_.size(); }
  const std::vector<Sit>& sits() const { return sits_; }
  void Clear() { sits_.clear(); }

 private:
  std::vector<Sit> sits_;
};

}  // namespace sitstats

#endif  // SITSTATS_SIT_SIT_CATALOG_H_
