#ifndef SITSTATS_SIT_SIT_CATALOG_H_
#define SITSTATS_SIT_SIT_CATALOG_H_

#include <vector>

#include "common/status.h"
#include "sit/sit.h"

namespace sitstats {

/// The statistics store for SITs. The cardinality-estimation wrapper
/// (Section 2.2) consults it to rewrite sub-plans whose generating query
/// matches an available SIT.
///
/// Not internally synchronized: concurrent readers are safe, but Add()
/// must be serialized against readers by the owner (the server guards its
/// instance with a reader-writer lock on the estimate/build paths).
class SitCatalog {
 public:
  /// Registers a SIT. A SIT equivalent to an existing one replaces it.
  void Add(Sit sit);

  /// Self-validation hook: proves no registered SIT is partial. Every
  /// entry must have an attribute its generating query references, an
  /// internally valid histogram (ordering, finiteness, distinct-count
  /// bounds), a finite non-negative estimated cardinality, and buckets
  /// whenever that cardinality is positive. A failed or cancelled build
  /// must never leave a half-registered SIT behind; the fault sweep calls
  /// this after every injection instead of keeping its own bookkeeping.
  Status ValidateConsistency() const;

  /// The SIT over `attribute` whose generating query is equivalent to
  /// `query`, or nullptr.
  const Sit* Find(const ColumnRef& attribute,
                  const GeneratingQuery& query) const;

  const Sit* Find(const SitDescriptor& descriptor) const {
    return Find(descriptor.attribute(), descriptor.query());
  }

  size_t size() const { return sits_.size(); }
  const std::vector<Sit>& sits() const { return sits_; }
  void Clear() { sits_.clear(); }

 private:
  std::vector<Sit> sits_;
};

}  // namespace sitstats

#endif  // SITSTATS_SIT_SIT_CATALOG_H_
