#include "sit/creator.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "histogram/join_estimate.h"
#include "query/join_tree.h"
#include "sit/oracle_factory.h"
#include "sit/sweep_scan.h"
#include "telemetry/telemetry.h"

namespace sitstats {

namespace {

bool UsesSampling(SweepVariant variant) {
  return variant == SweepVariant::kSweep ||
         variant == SweepVariant::kSweepIndex;
}

bool UsesExactOracle(SweepVariant variant) {
  return variant == SweepVariant::kSweepIndex ||
         variant == SweepVariant::kSweepExact;
}

/// The Sweep family: post-order traversal of the join tree (Section 3.2).
Result<Sit> CreateSitWithSweep(Catalog* catalog, BaseStatsCache* base_stats,
                               const SitDescriptor& descriptor,
                               const SitBuildOptions& options) {
  const ColumnRef& attribute = descriptor.attribute();
  SITSTATS_ASSIGN_OR_RETURN(
      JoinTree tree, JoinTree::Build(descriptor.query(), attribute.table));
  Rng rng(SitStreamSeed(options.seed, descriptor));
  IoStats before = catalog->SnapshotMetrics();

  // Base-table query: the "SIT" is just a base histogram.
  if (descriptor.query().IsBaseTable()) {
    SITSTATS_ASSIGN_OR_RETURN(
        const Histogram* hist,
        base_stats->GetOrBuild(*catalog, attribute.table, attribute.column,
                               &rng));
    SITSTATS_ASSIGN_OR_RETURN(const Table* table,
                              catalog->GetTable(attribute.table));
    Sit sit{descriptor, *hist, options.variant,
            static_cast<double>(table->num_rows()), IoStats{}};
    return sit;
  }

  const bool exact_oracle = UsesExactOracle(options.variant);
  std::map<int, SweepOutput> node_outputs;

  for (int node_index : tree.PostOrder()) {
    if (tree.IsLeaf(node_index)) continue;  // leaves contribute base stats
    const JoinTree::Node& node = tree.node(node_index);

    SweepScanSpec spec;
    spec.table = node.table;
    spec.sampling_rate = options.sampling_rate;
    spec.min_sample_size = options.min_sample_size;
    spec.use_sampling = UsesSampling(options.variant);
    spec.histogram_spec = options.histogram_spec;
    spec.cancel = options.cancel;

    // Oracles must outlive the scan; owned locally per node.
    std::vector<std::unique_ptr<MultiplicityOracle>> oracles;
    SweepTarget target;
    for (int child_index : node.children) {
      const JoinTree::Node& child = tree.node(child_index);
      SweepOutput* child_output = nullptr;
      auto it = node_outputs.find(child_index);
      if (it != node_outputs.end()) child_output = &it->second;
      SITSTATS_ASSIGN_OR_RETURN(
          std::unique_ptr<MultiplicityOracle> oracle,
          MakeChildOracle(catalog, base_stats, tree, node_index, child_index,
                          child_output, exact_oracle, &rng,
                          options.containment_mode));
      target.join_indices.push_back(spec.joins.size());
      spec.joins.push_back(SweepJoin{child.parent_columns, oracle.get()});
      oracles.push_back(std::move(oracle));
    }

    const bool is_root = node_index == tree.root();
    if (!is_root && node.HasCompositeParentEdge()) {
      // The intermediate SIT this scan would produce must describe the
      // joint distribution of several columns; 1D intermediate statistics
      // cannot carry that. (Composite predicates towards *leaf* children
      // are fully supported.)
      return Status::NotImplemented(
          "composite join predicates between intermediate results are not "
          "supported (node " + node.table + ")");
    }
    target.attribute = is_root ? attribute.column : node.column_to_parent();
    target.build_exact_map = exact_oracle && !is_root;
    spec.targets.push_back(std::move(target));

    SITSTATS_ASSIGN_OR_RETURN(std::vector<SweepOutput> outputs,
                              SweepScanTable(catalog, spec, &rng));
    node_outputs[node_index] = std::move(outputs[0]);
  }

  SweepOutput& root_output = node_outputs[tree.root()];
  IoStats delta = catalog->SnapshotMetrics() - before;
  Sit sit{descriptor, std::move(root_output.histogram), options.variant,
          root_output.estimated_cardinality, delta};
  return sit;
}

/// The Hist-SIT baseline: propagate base histograms through the join tree
/// without touching the data.
Result<Sit> CreateHistSit(Catalog* catalog, BaseStatsCache* base_stats,
                          const SitDescriptor& descriptor,
                          const SitBuildOptions& options) {
  const ColumnRef& attribute = descriptor.attribute();
  SITSTATS_ASSIGN_OR_RETURN(
      JoinTree tree, JoinTree::Build(descriptor.query(), attribute.table));
  Rng rng(SitStreamSeed(options.seed, descriptor));

  // Estimated cardinality of each node's subtree join, bottom-up. For a
  // node with children c1..ck the optimizer folds the children in one at a
  // time: card = |T|, then for each child,
  //   card = EstimateJoin(scale(H_base(node.key_ci), card), H_key(ci)).
  std::map<int, double> subtree_card;
  std::map<int, Histogram> subtree_key_hist;
  for (int node_index : tree.PostOrder()) {
    const JoinTree::Node& node = tree.node(node_index);
    if (node_index != tree.root() && node.HasCompositeParentEdge() &&
        !tree.IsLeaf(node_index)) {
      return Status::NotImplemented(
          "composite join predicates between intermediate results are not "
          "supported (node " + node.table + ")");
    }
    SITSTATS_ASSIGN_OR_RETURN(const Table* table,
                              catalog->GetTable(node.table));
    double card = static_cast<double>(table->num_rows());
    for (int child_index : node.children) {
      const JoinTree::Node& child = tree.node(child_index);
      double child_card = subtree_card[child_index];
      // Fold the child's predicates in with the classic independence-
      // between-predicates rule: sel(p1 ∧ p2 ∧ ...) = Π sel(p_i).
      double selectivity = 1.0;
      for (size_t j = 0; j < child.columns_to_parent.size(); ++j) {
        SITSTATS_ASSIGN_OR_RETURN(
            const Histogram* own_key,
            base_stats->GetOrBuild(*catalog, node.table,
                                   child.parent_columns[j], &rng));
        Histogram scaled = own_key->ScaledToTotal(card);
        Histogram child_key;
        if (j == 0 && !tree.IsLeaf(child_index)) {
          child_key = subtree_key_hist[child_index];
        } else {
          SITSTATS_ASSIGN_OR_RETURN(
              const Histogram* child_base,
              base_stats->GetOrBuild(*catalog, child.table,
                                     child.columns_to_parent[j], &rng));
          child_key = child_base->ScaledToTotal(child_card);
        }
        double join_est = EstimateJoinCardinality(scaled, child_key);
        selectivity *= join_est / std::max(card * child_card, 1.0);
      }
      card = card * child_card * selectivity;
    }
    subtree_card[node_index] = card;
    const bool is_root = node_index == tree.root();
    const std::string& key_column =
        is_root ? attribute.column : node.column_to_parent();
    SITSTATS_ASSIGN_OR_RETURN(
        const Histogram* key_hist,
        base_stats->GetOrBuild(*catalog, node.table, key_column, &rng));
    subtree_key_hist[node_index] = key_hist->ScaledToTotal(card);
  }

  Sit sit{descriptor, std::move(subtree_key_hist[tree.root()]),
          SweepVariant::kHistSit, subtree_card[tree.root()], IoStats{}};
  return sit;
}

}  // namespace

uint64_t SitStreamSeed(uint64_t seed, const SitDescriptor& descriptor) {
  return DeriveStreamSeed(seed, descriptor.ToString());
}

Result<Sit> CreateSit(Catalog* catalog, BaseStatsCache* base_stats,
                      const SitDescriptor& descriptor,
                      const SitBuildOptions& options) {
  static telemetry::Counter& sits_created =
      telemetry::MetricsRegistry::Global().GetCounter("sit.creates");
  telemetry::TraceSpan span("sit.create");
  span.AddAttribute("sit", descriptor.ToString());
  span.AddAttribute("variant", SweepVariantToString(options.variant));
  sits_created.Increment();
  SITSTATS_FAULT_SITE("sit.create");
  if (!descriptor.query().ReferencesTable(descriptor.attribute().table)) {
    return Status::InvalidArgument(
        "SIT attribute table is not part of the generating query: " +
        descriptor.ToString());
  }
  // `!(x > 0)` instead of `x <= 0`: NaN fails both orderings of the
  // naive spelling and would sail through to the capacity math (where
  // casting rows * NaN is undefined behavior).
  if (!(options.sampling_rate > 0.0) || options.sampling_rate > 1.0) {
    return Status::InvalidArgument("sampling_rate must be in (0, 1]");
  }
  if (options.variant == SweepVariant::kHistSit) {
    return CreateHistSit(catalog, base_stats, descriptor, options);
  }
  return CreateSitWithSweep(catalog, base_stats, descriptor, options);
}

}  // namespace sitstats
