#ifndef SITSTATS_SIT_SERIALIZATION_H_
#define SITSTATS_SIT_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "histogram/histogram.h"
#include "sit/sit.h"
#include "sit/sit_catalog.h"

namespace sitstats {

/// Text serialization of statistics, so a SIT catalog built by an offline
/// job can be persisted and reloaded by the optimizer process — the
/// deployment model the paper assumes (SITs are created by a statistics
/// utility, consumed during optimization).
///
/// The format is a line-oriented UTF-8 text format with full double
/// precision (round-trips bit-exactly); see SerializeHistogram for the
/// grammar.

/// "histogram <n>\n" followed by n lines "lo hi frequency distinct".
std::string SerializeHistogram(const Histogram& histogram);
Result<Histogram> DeserializeHistogram(const std::string& text);

/// One SIT: descriptor (attribute, tables, join predicates), variant,
/// estimated cardinality, histogram.
std::string SerializeSit(const Sit& sit);
Result<Sit> DeserializeSit(const std::string& text);

/// Whole catalog: "sitcatalog <n>" header plus n serialized SITs.
std::string SerializeSitCatalog(const SitCatalog& catalog);
Result<SitCatalog> DeserializeSitCatalog(const std::string& text);

/// File round-trip helpers.
Status SaveSitCatalog(const SitCatalog& catalog, const std::string& path);
Result<SitCatalog> LoadSitCatalog(const std::string& path);

/// Parses the name produced by SweepVariantToString.
Result<SweepVariant> SweepVariantFromString(const std::string& name);

}  // namespace sitstats

#endif  // SITSTATS_SIT_SERIALIZATION_H_
