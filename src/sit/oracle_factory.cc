#include "sit/oracle_factory.h"

#include <cmath>

#include "common/fault_injection.h"

namespace sitstats {

namespace {

/// Reads the (x, y) pairs of two numeric columns of a table.
Result<std::vector<std::pair<double, double>>> ReadPairs(
    const Table& table, const std::string& x_column,
    const std::string& y_column) {
  SITSTATS_ASSIGN_OR_RETURN(const Column* xc, table.GetColumn(x_column));
  SITSTATS_ASSIGN_OR_RETURN(const Column* yc, table.GetColumn(y_column));
  if (xc->type() == ValueType::kString ||
      yc->type() == ValueType::kString) {
    return Status::InvalidArgument("grid over string column");
  }
  std::vector<std::pair<double, double>> points;
  points.reserve(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    points.emplace_back(xc->GetNumeric(row), yc->GetNumeric(row));
  }
  return points;
}

/// Builds the oracle for a *composite* edge (two or more predicates) whose
/// child is a base table.
Result<std::unique_ptr<MultiplicityOracle>> MakeCompositeLeafOracle(
    Catalog* catalog, BaseStatsCache* base_stats,
    const JoinTree::Node& node, const JoinTree::Node& child, bool exact) {
  SITSTATS_ASSIGN_OR_RETURN(const Table* child_table,
                            catalog->GetTable(child.table));
  if (exact) {
    SITSTATS_ASSIGN_OR_RETURN(
        CompositeExactMOracle oracle,
        CompositeExactMOracle::BuildFromTable(
            *child_table, child.columns_to_parent, &catalog->io_counters()));
    return std::unique_ptr<MultiplicityOracle>(
        std::make_unique<CompositeExactMOracle>(std::move(oracle)));
  }
  if (child.columns_to_parent.size() != 2) {
    return Status::NotImplemented(
        "histogram-based oracles support at most two parallel join "
        "predicates (2D grids); use SweepIndex/SweepExact for wider "
        "composites");
  }
  // Grid resolution derived from the 1D bucket budget: nb buckets total
  // split across a square grid.
  int nb = base_stats->options().histogram_spec.num_buckets;
  int resolution = std::max(4, static_cast<int>(std::sqrt(
                                   static_cast<double>(std::max(nb, 16)))));
  using PointVector = std::vector<std::pair<double, double>>;
  PointVector other_points;
  SITSTATS_ASSIGN_OR_RETURN(
      other_points, ReadPairs(*child_table, child.columns_to_parent[0],
                              child.columns_to_parent[1]));
  SITSTATS_ASSIGN_OR_RETURN(const Table* node_table,
                            catalog->GetTable(node.table));
  PointVector scanned_points;
  SITSTATS_ASSIGN_OR_RETURN(
      scanned_points, ReadPairs(*node_table, child.parent_columns[0],
                                child.parent_columns[1]));
  // Shared bounds: cover both point sets so the two grids' cells align.
  PointVector all_points = other_points;
  all_points.insert(all_points.end(), scanned_points.begin(),
                    scanned_points.end());
  SITSTATS_ASSIGN_OR_RETURN(
      GridHistogram2D::Bounds bounds,
      GridHistogram2D::FitBounds(all_points, resolution, resolution));
  SITSTATS_ASSIGN_OR_RETURN(GridHistogram2D other_grid,
                            GridHistogram2D::Build(other_points, bounds));
  SITSTATS_ASSIGN_OR_RETURN(
      GridHistogram2D scanned_grid,
      GridHistogram2D::Build(scanned_points, bounds));
  return std::unique_ptr<MultiplicityOracle>(std::make_unique<GridMOracle>(
      std::move(other_grid), std::move(scanned_grid),
      &catalog->io_counters()));
}

}  // namespace

Result<std::unique_ptr<MultiplicityOracle>> MakeChildOracle(
    Catalog* catalog, BaseStatsCache* base_stats, const JoinTree& tree,
    int node_index, int child_index, SweepOutput* child_output, bool exact,
    Rng* rng, ContainmentMode mode) {
  SITSTATS_FAULT_SITE("sit.oracle.create");
  const JoinTree::Node& node = tree.node(node_index);
  const JoinTree::Node& child = tree.node(child_index);
  const bool child_is_leaf = tree.IsLeaf(child_index);

  if (child.HasCompositeParentEdge()) {
    if (!child_is_leaf) {
      return Status::NotImplemented(
          "composite join predicates are supported towards base tables "
          "only; edge " + node.table + " - " + child.table +
          " joins an intermediate result on multiple columns");
    }
    return MakeCompositeLeafOracle(catalog, base_stats, node, child, exact);
  }

  if (exact) {
    if (child_is_leaf) {
      // SweepIndex proper: repeated index lookups on the base table.
      // EnsureIndex (not HasIndex+BuildIndex) so concurrent schedule steps
      // wanting the same index race safely: one build wins, nobody's
      // pointer is invalidated.
      SITSTATS_ASSIGN_OR_RETURN(
          const SortedIndex* index,
          catalog->EnsureIndex(child.table, child.column_to_parent()));
      return std::unique_ptr<MultiplicityOracle>(
          std::make_unique<IndexMOracle>(index, &catalog->io_counters()));
    }
    if (child_output == nullptr) {
      return Status::Internal("exact oracle for internal child " +
                              child.table + " without its sweep output");
    }
    return std::unique_ptr<MultiplicityOracle>(
        std::make_unique<ExactMapMOracle>(std::move(child_output->exact_map),
                                          &catalog->io_counters()));
  }

  Histogram other_side;
  if (child_is_leaf) {
    SITSTATS_ASSIGN_OR_RETURN(
        const Histogram* hist,
        base_stats->GetOrBuild(*catalog, child.table,
                               child.column_to_parent(), rng));
    other_side = *hist;
  } else {
    if (child_output == nullptr) {
      return Status::Internal("histogram oracle for internal child " +
                              child.table + " without its sweep output");
    }
    other_side = child_output->histogram;
  }
  SITSTATS_ASSIGN_OR_RETURN(
      const Histogram* scanned_side,
      base_stats->GetOrBuild(*catalog, node.table, child.parent_column(),
                             rng));
  return std::unique_ptr<MultiplicityOracle>(
      std::make_unique<HistogramMOracle>(std::move(other_side),
                                         *scanned_side,
                                         &catalog->io_counters(), mode));
}

}  // namespace sitstats
