#include "sit/sit_catalog.h"

#include <cmath>

namespace sitstats {

Status SitCatalog::ValidateConsistency() const {
  for (const Sit& sit : sits_) {
    const std::string name = sit.descriptor.ToString();
    if (!sit.descriptor.query().ReferencesTable(
            sit.descriptor.attribute().table)) {
      return Status::Internal("registered SIT " + name +
                              " has an attribute outside its query");
    }
    Status histogram_valid = sit.histogram.CheckValid();
    if (!histogram_valid.ok()) {
      return Status::Internal("registered SIT " + name +
                              " has an invalid histogram: " +
                              histogram_valid.ToString());
    }
    if (!std::isfinite(sit.estimated_cardinality) ||
        sit.estimated_cardinality < 0.0) {
      return Status::Internal("registered SIT " + name +
                              " has an invalid estimated cardinality");
    }
    if (sit.estimated_cardinality > 0.0 && sit.histogram.num_buckets() == 0) {
      return Status::Internal("registered SIT " + name +
                              " is incomplete: positive cardinality with an "
                              "empty histogram");
    }
  }
  return Status::OK();
}

void SitCatalog::Add(Sit sit) {
  for (Sit& existing : sits_) {
    if (existing.descriptor.EquivalentTo(sit.descriptor)) {
      existing = std::move(sit);
      return;
    }
  }
  sits_.push_back(std::move(sit));
}

const Sit* SitCatalog::Find(const ColumnRef& attribute,
                            const GeneratingQuery& query) const {
  for (const Sit& sit : sits_) {
    if (sit.descriptor.attribute() == attribute &&
        sit.descriptor.query().EquivalentTo(query)) {
      return &sit;
    }
  }
  return nullptr;
}

}  // namespace sitstats
