#include "sit/sit_catalog.h"

namespace sitstats {

void SitCatalog::Add(Sit sit) {
  for (Sit& existing : sits_) {
    if (existing.descriptor.EquivalentTo(sit.descriptor)) {
      existing = std::move(sit);
      return;
    }
  }
  sits_.push_back(std::move(sit));
}

const Sit* SitCatalog::Find(const ColumnRef& attribute,
                            const GeneratingQuery& query) const {
  for (const Sit& sit : sits_) {
    if (sit.descriptor.attribute() == attribute &&
        sit.descriptor.query().EquivalentTo(query)) {
      return &sit;
    }
  }
  return nullptr;
}

}  // namespace sitstats
