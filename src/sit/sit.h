#ifndef SITSTATS_SIT_SIT_H_
#define SITSTATS_SIT_SIT_H_

#include <string>

#include "histogram/histogram.h"
#include "query/column_ref.h"
#include "query/generating_query.h"
#include "storage/io_stats.h"

namespace sitstats {

/// Names one SIT (Definition 1): the statistic over `attribute` on the
/// result of `query`. attribute.table must be referenced by the query.
class SitDescriptor {
 public:
  SitDescriptor(ColumnRef attribute, GeneratingQuery query)
      : attribute_(std::move(attribute)), query_(std::move(query)) {}

  const ColumnRef& attribute() const { return attribute_; }
  const GeneratingQuery& query() const { return query_; }

  /// "SIT(S.a | R JOIN S ON ...)".
  std::string ToString() const {
    return "SIT(" + attribute_.ToString() + " | " + query_.ToString() + ")";
  }

  /// Same attribute and an equivalent generating query.
  bool EquivalentTo(const SitDescriptor& other) const {
    return attribute_ == other.attribute_ &&
           query_.EquivalentTo(other.query_);
  }

 private:
  ColumnRef attribute_;
  GeneratingQuery query_;
};

/// How a SIT was built — the paper's accuracy/efficiency spectrum
/// (Section 3.1.2) plus the traditional propagation baseline (Hist-SIT).
enum class SweepVariant {
  /// Histogram m-Oracle + reservoir sampling: relies on the containment
  /// and sampling assumptions only.
  kSweep,
  /// Exact m-Oracle (index / exact multiplicity map) + sampling: drops the
  /// containment assumption.
  kSweepIndex,
  /// Histogram m-Oracle, no sampling (spillable temporary store): drops
  /// the sampling assumption.
  kSweepFull,
  /// Exact m-Oracle, no sampling: identical to executing the generating
  /// query and building the histogram over the result.
  kSweepExact,
  /// No scan at all: propagate base-table histograms through the join
  /// (independence + containment + sampling assumptions). The baseline
  /// current optimizers implement.
  kHistSit,
};

const char* SweepVariantToString(SweepVariant variant);

/// A built SIT: descriptor, the statistic itself, and build metadata.
struct Sit {
  SitDescriptor descriptor;
  Histogram histogram;
  SweepVariant variant = SweepVariant::kSweep;
  /// The builder's estimate of |query| (total weight of the approximated
  /// stream; for kSweepExact this is exact).
  double estimated_cardinality = 0.0;
  /// Physical work performed while building this SIT.
  IoStats build_stats;
};

}  // namespace sitstats

#endif  // SITSTATS_SIT_SIT_H_
