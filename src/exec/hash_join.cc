#include "exec/hash_join.h"

#include <unordered_map>
#include <vector>

namespace sitstats {

namespace {

/// "T.col" unless the name is already qualified (join of joins).
std::string Qualify(const std::string& table, const std::string& column) {
  if (column.find('.') != std::string::npos) return column;
  return table + "." + column;
}

}  // namespace

Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const std::string& left_column,
                             const std::string& right_column) {
  SITSTATS_ASSIGN_OR_RETURN(const Column* lcol, left.GetColumn(left_column));
  SITSTATS_ASSIGN_OR_RETURN(const Column* rcol, right.GetColumn(right_column));
  if (lcol->type() == ValueType::kString ||
      rcol->type() == ValueType::kString) {
    return Status::InvalidArgument("hash join on string columns");
  }

  // Build side: smaller input.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const Column* build_key = build_left ? lcol : rcol;
  const Column* probe_key = build_left ? rcol : lcol;

  // 64-bit row ids: uint32_t here silently truncated beyond 2^32 rows
  // (and the paper's temp populations reach billions).
  std::unordered_map<double, std::vector<uint64_t>> hash_table;
  hash_table.reserve(build.num_rows());
  for (size_t row = 0; row < build.num_rows(); ++row) {
    hash_table[build_key->GetNumeric(row)].push_back(
        static_cast<uint64_t>(row));
  }

  Schema out_schema;
  for (const ColumnDef& def : left.schema().columns()) {
    out_schema.AddColumn(Qualify(left.name(), def.name), def.type);
  }
  for (const ColumnDef& def : right.schema().columns()) {
    out_schema.AddColumn(Qualify(right.name(), def.name), def.type);
  }
  Table out(left.name() + "_" + right.name(), out_schema);

  const size_t left_cols = left.num_columns();
  for (size_t probe_row = 0; probe_row < probe.num_rows(); ++probe_row) {
    auto it = hash_table.find(probe_key->GetNumeric(probe_row));
    if (it == hash_table.end()) continue;
    for (uint64_t build_row : it->second) {
      size_t lrow = build_left ? build_row : probe_row;
      size_t rrow = build_left ? probe_row : build_row;
      for (size_t c = 0; c < left.num_columns(); ++c) {
        out.column(c).Append(left.column(c).Get(lrow));
      }
      for (size_t c = 0; c < right.num_columns(); ++c) {
        out.column(left_cols + c).Append(right.column(c).Get(rrow));
      }
    }
  }
  return out;
}

}  // namespace sitstats
