#include "exec/query_executor.h"

#include <cstring>

#include <unordered_map>

#include "exec/hash_join.h"

namespace sitstats {

namespace {

/// Multiplicity table of a subtree: byte-encoded join-key tuple (the
/// node's columns_to_parent values) -> number of subtree join
/// combinations per key. Byte encoding supports composite (multi-
/// predicate) edges uniformly.
using MultiplicityMap = std::unordered_map<std::string, uint64_t>;

std::string EncodeKey(const double* values, size_t n) {
  std::string key(n * sizeof(double), '\0');
  std::memcpy(key.data(), values, n * sizeof(double));
  return key;
}

/// Computes the multiplicity map of `node`'s subtree. For each row of the
/// node's table, the subtree multiplicity is the product over children of
/// the child's multiplicity at the row's join value (0 when absent);
/// results are accumulated per column_to_parent key.
Result<MultiplicityMap> SubtreeMultiplicities(const Catalog& catalog,
                                              const JoinTree& tree,
                                              int node_index);

/// Per-row multiplicity of `node`'s subtree combinations for each row of
/// its table (not yet grouped by any key). Shared by the root computation
/// and SubtreeMultiplicities.
Result<std::vector<uint64_t>> RowMultiplicities(const Catalog& catalog,
                                                const JoinTree& tree,
                                                int node_index) {
  const JoinTree::Node& node = tree.node(node_index);
  SITSTATS_ASSIGN_OR_RETURN(const Table* table,
                            catalog.GetTable(node.table));
  std::vector<uint64_t> mult(table->num_rows(), 1);
  for (int child_index : node.children) {
    SITSTATS_ASSIGN_OR_RETURN(
        MultiplicityMap child_map,
        SubtreeMultiplicities(catalog, tree, child_index));
    const JoinTree::Node& child = tree.node(child_index);
    std::vector<const Column*> key_cols;
    for (const std::string& column : child.parent_columns) {
      SITSTATS_ASSIGN_OR_RETURN(const Column* key_col,
                                table->GetColumn(column));
      key_cols.push_back(key_col);
    }
    std::vector<double> values(key_cols.size());
    for (size_t row = 0; row < mult.size(); ++row) {
      if (mult[row] == 0) continue;
      for (size_t c = 0; c < key_cols.size(); ++c) {
        values[c] = key_cols[c]->GetNumeric(row);
      }
      auto it = child_map.find(EncodeKey(values.data(), values.size()));
      mult[row] = (it == child_map.end()) ? 0 : mult[row] * it->second;
    }
  }
  return mult;
}

Result<MultiplicityMap> SubtreeMultiplicities(const Catalog& catalog,
                                              const JoinTree& tree,
                                              int node_index) {
  const JoinTree::Node& node = tree.node(node_index);
  SITSTATS_ASSIGN_OR_RETURN(const Table* table,
                            catalog.GetTable(node.table));
  SITSTATS_ASSIGN_OR_RETURN(std::vector<uint64_t> mult,
                            RowMultiplicities(catalog, tree, node_index));
  std::vector<const Column*> key_cols;
  for (const std::string& column : node.columns_to_parent) {
    SITSTATS_ASSIGN_OR_RETURN(const Column* key_col,
                              table->GetColumn(column));
    key_cols.push_back(key_col);
  }
  MultiplicityMap map;
  std::vector<double> values(key_cols.size());
  for (size_t row = 0; row < mult.size(); ++row) {
    if (mult[row] == 0) continue;
    for (size_t c = 0; c < key_cols.size(); ++c) {
      values[c] = key_cols[c]->GetNumeric(row);
    }
    map[EncodeKey(values.data(), values.size())] += mult[row];
  }
  return map;
}

}  // namespace

Result<std::vector<WeightedValue>> ExecuteProjection(
    const Catalog& catalog, const GeneratingQuery& query,
    const ColumnRef& attribute) {
  SITSTATS_ASSIGN_OR_RETURN(JoinTree tree,
                            JoinTree::Build(query, attribute.table));
  SITSTATS_ASSIGN_OR_RETURN(const Table* root_table,
                            catalog.GetTable(attribute.table));
  SITSTATS_ASSIGN_OR_RETURN(const Column* attr_col,
                            root_table->GetColumn(attribute.column));
  SITSTATS_ASSIGN_OR_RETURN(
      std::vector<uint64_t> mult,
      RowMultiplicities(catalog, tree, tree.root()));
  std::vector<WeightedValue> out;
  out.reserve(mult.size());
  for (size_t row = 0; row < mult.size(); ++row) {
    if (mult[row] == 0) continue;
    out.push_back(WeightedValue{attr_col->GetNumeric(row), mult[row]});
  }
  return out;
}

Result<double> ExactJoinCardinality(const Catalog& catalog,
                                    const GeneratingQuery& query) {
  // Any table can serve as the root; project on its first column.
  const std::string& root = query.tables().front();
  SITSTATS_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(root));
  if (table->num_columns() == 0) return 0.0;
  // Find a numeric column to project (the weight math ignores the values).
  for (size_t c = 0; c < table->num_columns(); ++c) {
    if (table->column(c).type() == ValueType::kString) continue;
    ColumnRef attr{root, table->column(c).name()};
    SITSTATS_ASSIGN_OR_RETURN(std::vector<WeightedValue> values,
                              ExecuteProjection(catalog, query, attr));
    double total = 0.0;
    for (const WeightedValue& wv : values) {
      total += static_cast<double>(wv.weight);
    }
    return total;
  }
  return Status::InvalidArgument("table " + root + " has no numeric column");
}

Result<double> ExactRangeCardinality(const Catalog& catalog,
                                     const GeneratingQuery& query,
                                     const ColumnRef& attribute, double lo,
                                     double hi) {
  SITSTATS_ASSIGN_OR_RETURN(std::vector<WeightedValue> values,
                            ExecuteProjection(catalog, query, attribute));
  double total = 0.0;
  for (const WeightedValue& wv : values) {
    if (wv.value >= lo && wv.value <= hi) {
      total += static_cast<double>(wv.weight);
    }
  }
  return total;
}

Result<std::vector<double>> ExpandWeighted(
    const std::vector<WeightedValue>& values, uint64_t max_rows) {
  uint64_t total = 0;
  for (const WeightedValue& wv : values) {
    total += wv.weight;
    if (total > max_rows) {
      return Status::ResourceExhausted(
          "weighted expansion exceeds " + std::to_string(max_rows) +
          " rows");
    }
  }
  std::vector<double> out;
  out.reserve(total);
  for (const WeightedValue& wv : values) {
    for (uint64_t i = 0; i < wv.weight; ++i) out.push_back(wv.value);
  }
  return out;
}

Result<Table> MaterializeJoin(const Catalog& catalog,
                              const GeneratingQuery& query) {
  SITSTATS_ASSIGN_OR_RETURN(
      JoinTree tree, JoinTree::Build(query, query.tables().front()));
  SITSTATS_ASSIGN_OR_RETURN(const Table* root,
                            catalog.GetTable(tree.node(0).table));
  // Start with a qualified copy of the root table so that column lookups
  // are uniform across the pipeline.
  Schema qualified;
  for (const ColumnDef& def : root->schema().columns()) {
    qualified.AddColumn(root->name() + "." + def.name, def.type);
  }
  Table current("join", qualified);
  current.Reserve(root->num_rows());
  for (size_t c = 0; c < root->num_columns(); ++c) {
    for (size_t row = 0; row < root->num_rows(); ++row) {
      current.column(c).Append(root->column(c).Get(row));
    }
  }
  // Join in BFS order: node i's parent columns are guaranteed present.
  for (size_t i = 1; i < tree.size(); ++i) {
    const JoinTree::Node& node = tree.node(static_cast<int>(i));
    SITSTATS_ASSIGN_OR_RETURN(const Table* next,
                              catalog.GetTable(node.table));
    const JoinTree::Node& parent =
        tree.node(node.parent);
    std::string left_key = parent.table + "." + node.parent_columns[0];
    SITSTATS_ASSIGN_OR_RETURN(
        Table joined,
        HashJoinTables(current, *next, left_key,
                       node.columns_to_parent[0]));
    // Composite edges: apply the remaining equality predicates as a
    // post-filter.
    if (node.HasCompositeParentEdge()) {
      std::vector<std::pair<const Column*, const Column*>> filters;
      for (size_t j = 1; j < node.columns_to_parent.size(); ++j) {
        SITSTATS_ASSIGN_OR_RETURN(
            const Column* l,
            joined.GetColumn(parent.table + "." + node.parent_columns[j]));
        SITSTATS_ASSIGN_OR_RETURN(
            const Column* r,
            joined.GetColumn(node.table + "." + node.columns_to_parent[j]));
        filters.emplace_back(l, r);
      }
      Table filtered(joined.name(), joined.schema());
      for (size_t row = 0; row < joined.num_rows(); ++row) {
        bool keep = true;
        for (const auto& [l, r] : filters) {
          if (l->GetNumeric(row) != r->GetNumeric(row)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        for (size_t c = 0; c < joined.num_columns(); ++c) {
          filtered.column(c).Append(joined.column(c).Get(row));
        }
      }
      joined = std::move(filtered);
    }
    current = std::move(joined);
  }
  return current;
}

}  // namespace sitstats
