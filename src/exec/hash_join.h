#ifndef SITSTATS_EXEC_HASH_JOIN_H_
#define SITSTATS_EXEC_HASH_JOIN_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace sitstats {

/// Materializing equality hash join of two tables on numeric columns.
///
/// The output table carries every column of both inputs; column names are
/// qualified as "T.col" unless they already contain a '.' (i.e. the input
/// is itself a join result). Intended for ground-truth computation and for
/// validating the streaming evaluator on small inputs — it materializes
/// the full result, so it is exponential on pathological join chains.
Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const std::string& left_column,
                             const std::string& right_column);

}  // namespace sitstats

#endif  // SITSTATS_EXEC_HASH_JOIN_H_
