#ifndef SITSTATS_EXEC_QUERY_EXECUTOR_H_
#define SITSTATS_EXEC_QUERY_EXECUTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "query/generating_query.h"
#include "query/join_tree.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace sitstats {

/// A value of the projected attribute together with its multiplicity in
/// the join result.
struct WeightedValue {
  double value = 0.0;
  uint64_t weight = 0;
};

/// Exact evaluation of π_attr(Q) for an acyclic generating query Q,
/// returned as (value, multiplicity) pairs — one pair per row of
/// attr's table that survives the join.
///
/// Works bottom-up over the join tree rooted at attr.table: each node
/// reduces to a hash map join-key -> total multiplicity of its subtree, so
/// the computation is linear in total input size and never materializes
/// the (possibly enormous) join result. This is the exact counterpart of
/// the quantity Sweep approximates, and provides the paper's ground truth
/// ("we materialized the generating query to obtain the actual result").
Result<std::vector<WeightedValue>> ExecuteProjection(
    const Catalog& catalog, const GeneratingQuery& query,
    const ColumnRef& attribute);

/// Exact |Q| for an acyclic generating query.
Result<double> ExactJoinCardinality(const Catalog& catalog,
                                    const GeneratingQuery& query);

/// Exact cardinality of σ_{lo <= attr <= hi}(Q).
Result<double> ExactRangeCardinality(const Catalog& catalog,
                                     const GeneratingQuery& query,
                                     const ColumnRef& attribute, double lo,
                                     double hi);

/// Expands weighted values into a flat bag (for histogram construction
/// over the true result). Fails if the expansion would exceed `max_rows`.
Result<std::vector<double>> ExpandWeighted(
    const std::vector<WeightedValue>& values,
    uint64_t max_rows = 100'000'000);

/// Materializes the full join result as a table with qualified column
/// names, joining along a BFS order of the join tree. Exponential in the
/// worst case; intended for tests and small inputs.
Result<Table> MaterializeJoin(const Catalog& catalog,
                              const GeneratingQuery& query);

}  // namespace sitstats

#endif  // SITSTATS_EXEC_QUERY_EXECUTOR_H_
