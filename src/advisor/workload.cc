#include "advisor/workload.h"

#include <sstream>

namespace sitstats {

std::string WorkloadQuery::ToString() const {
  std::ostringstream os;
  os << "sigma_{" << lo << " <= " << attribute.ToString() << " <= " << hi
     << "}(" << query.ToString() << ") w=" << weight;
  return os.str();
}

}  // namespace sitstats
