#ifndef SITSTATS_ADVISOR_WORKLOAD_H_
#define SITSTATS_ADVISOR_WORKLOAD_H_

#include <string>
#include <vector>

#include "query/column_ref.h"
#include "query/generating_query.h"

namespace sitstats {

/// One SPJ workload query: a range predicate over an attribute of a join
/// result — exactly the plan shape whose cardinality estimate SITs
/// improve (σ_{lo <= attr <= hi}(Q)).
struct WorkloadQuery {
  GeneratingQuery query;
  ColumnRef attribute;
  double lo = 0.0;
  double hi = 0.0;
  /// Relative weight (e.g. execution frequency) of this query in the
  /// workload.
  double weight = 1.0;

  std::string ToString() const;
};

/// A workload is a weighted bag of SPJ queries.
using Workload = std::vector<WorkloadQuery>;

}  // namespace sitstats

#endif  // SITSTATS_ADVISOR_WORKLOAD_H_
