#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "estimator/sit_estimator.h"
#include "query/join_tree.h"

namespace sitstats {

namespace {

/// Enumerates the connected subtrees of `tree` that contain the root,
/// as sets of node indices. A set is valid iff every included node's
/// parent is included (parent closure); trees here are tiny (query join
/// trees), so 2^n enumeration is fine.
std::vector<std::vector<int>> RootedSubtrees(const JoinTree& tree) {
  const size_t n = tree.size();
  std::vector<std::vector<int>> subtrees;
  for (uint64_t mask = 1; mask < (1ull << n); ++mask) {
    if ((mask & 1ull) == 0) continue;  // must contain the root (index 0)
    bool closed = true;
    for (size_t i = 1; i < n; ++i) {
      if ((mask & (1ull << i)) != 0) {
        int parent = tree.node(static_cast<int>(i)).parent;
        if ((mask & (1ull << static_cast<size_t>(parent))) == 0) {
          closed = false;
          break;
        }
      }
    }
    if (!closed) continue;
    std::vector<int> nodes;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) nodes.push_back(static_cast<int>(i));
    }
    if (nodes.size() >= 2) subtrees.push_back(std::move(nodes));
  }
  return subtrees;
}

/// The generating query induced by a rooted node set.
Result<GeneratingQuery> InducedQuery(const JoinTree& tree,
                                     const std::vector<int>& nodes) {
  std::set<int> node_set(nodes.begin(), nodes.end());
  std::vector<std::string> tables;
  std::vector<JoinPredicate> joins;
  for (int idx : nodes) {
    const JoinTree::Node& node = tree.node(idx);
    tables.push_back(node.table);
    if (node.parent >= 0 && node_set.contains(node.parent)) {
      const JoinTree::Node& parent = tree.node(node.parent);
      for (size_t j = 0; j < node.columns_to_parent.size(); ++j) {
        joins.push_back(
            JoinPredicate{ColumnRef{node.table, node.columns_to_parent[j]},
                          ColumnRef{parent.table, node.parent_columns[j]}});
      }
    }
  }
  return GeneratingQuery::Create(std::move(tables), std::move(joins));
}

}  // namespace

Result<std::vector<SitDescriptor>> SitAdvisor::EnumerateCandidates(
    const Workload& workload) const {
  std::vector<SitDescriptor> candidates;
  for (const WorkloadQuery& wq : workload) {
    if (wq.query.IsBaseTable()) continue;  // base statistics suffice
    if (wq.query.num_tables() > 16) {
      return Status::InvalidArgument(
          "candidate enumeration supports at most 16 tables per query");
    }
    SITSTATS_ASSIGN_OR_RETURN(
        JoinTree tree, JoinTree::Build(wq.query, wq.attribute.table));
    for (const std::vector<int>& nodes : RootedSubtrees(tree)) {
      SITSTATS_ASSIGN_OR_RETURN(GeneratingQuery sub,
                                InducedQuery(tree, nodes));
      SitDescriptor descriptor(wq.attribute, std::move(sub));
      bool duplicate = false;
      for (const SitDescriptor& existing : candidates) {
        if (existing.EquivalentTo(descriptor)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) candidates.push_back(std::move(descriptor));
    }
  }
  return candidates;
}

Result<SitAdvisor::Recommendation> SitAdvisor::Recommend(
    const Workload& workload) {
  SITSTATS_ASSIGN_OR_RETURN(std::vector<SitDescriptor> descriptors,
                            EnumerateCandidates(workload));
  std::vector<Candidate> scored;
  for (SitDescriptor& descriptor : descriptors) {
    // Pilot build: cheap Sweep.
    SitBuildOptions pilot_options;
    pilot_options.variant = SweepVariant::kSweep;
    pilot_options.sampling_rate = options_.pilot_sampling_rate;
    pilot_options.histogram_spec.num_buckets = options_.pilot_buckets;
    pilot_options.seed = options_.seed;
    Result<Sit> pilot =
        CreateSit(catalog_, base_stats_, descriptor, pilot_options);
    if (!pilot.ok()) continue;  // e.g. unsupported composite shapes

    // One-at-a-time creation cost.
    SITSTATS_ASSIGN_OR_RETURN(
        JoinTree tree,
        JoinTree::Build(descriptor.query(), descriptor.attribute().table));
    double cost = 0.0;
    for (const std::vector<std::string>& seq : tree.DependencySequences()) {
      for (const std::string& table : seq) {
        SITSTATS_ASSIGN_OR_RETURN(const Table* t,
                                  catalog_->GetTable(table));
        cost += options_.cost_model.SequentialScanCost(t->num_rows());
      }
    }

    // Benefit proxy: workload-weighted disagreement between the pilot-
    // backed estimator and pure propagation.
    SitCatalog pilot_catalog;
    pilot_catalog.Add(std::move(pilot).ValueOrDie());
    CardinalityEstimator with(catalog_, base_stats_, &pilot_catalog);
    CardinalityEstimator without(catalog_, base_stats_, nullptr);
    Candidate candidate{descriptor, 0.0, cost, 0};
    for (const WorkloadQuery& wq : workload) {
      if (wq.attribute != descriptor.attribute()) continue;
      SITSTATS_ASSIGN_OR_RETURN(
          CardinalityEstimator::Estimate est_with,
          with.EstimateRangeQuery(wq.query, wq.attribute, wq.lo, wq.hi));
      if (!est_with.used_sit) continue;  // candidate does not apply
      SITSTATS_ASSIGN_OR_RETURN(
          CardinalityEstimator::Estimate est_without,
          without.EstimateRangeQuery(wq.query, wq.attribute, wq.lo, wq.hi));
      // Symmetric, bounded disagreement in [0, 1): 0 when the two
      // estimators agree, -> 1 when they differ by orders of magnitude.
      double disagreement =
          std::fabs(est_with.cardinality - est_without.cardinality) /
          std::max({est_with.cardinality, est_without.cardinality, 1.0});
      candidate.benefit += wq.weight * disagreement;
      candidate.applicable_queries += 1;
    }
    scored.push_back(std::move(candidate));
  }

  // Greedy benefit/cost selection under the budget.
  std::sort(scored.begin(), scored.end(),
            [](const Candidate& a, const Candidate& b) {
              double ra = a.benefit / std::max(a.cost, 1e-9);
              double rb = b.benefit / std::max(b.cost, 1e-9);
              if (ra != rb) return ra > rb;
              return a.benefit > b.benefit;
            });
  Recommendation recommendation;
  for (Candidate& candidate : scored) {
    bool affordable =
        recommendation.total_cost + candidate.cost <= options_.budget;
    if (candidate.benefit >= options_.min_benefit &&
        candidate.applicable_queries > 0 && affordable) {
      recommendation.total_cost += candidate.cost;
      recommendation.selected.push_back(std::move(candidate));
    } else {
      recommendation.rejected.push_back(std::move(candidate));
    }
  }
  return recommendation;
}

Status SitAdvisor::CreateSelected(const Recommendation& recommendation,
                                  SweepVariant variant, SitCatalog* sits) {
  for (const Candidate& candidate : recommendation.selected) {
    SitBuildOptions options;
    options.variant = variant;
    options.seed = options_.seed;
    SITSTATS_ASSIGN_OR_RETURN(
        Sit sit,
        CreateSit(catalog_, base_stats_, candidate.descriptor, options));
    sits->Add(std::move(sit));
  }
  return Status::OK();
}

}  // namespace sitstats
