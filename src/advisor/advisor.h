#ifndef SITSTATS_ADVISOR_ADVISOR_H_
#define SITSTATS_ADVISOR_ADVISOR_H_

#include <vector>

#include "advisor/workload.h"
#include "common/result.h"
#include "sit/base_stats.h"
#include "sit/creator.h"
#include "sit/sit_catalog.h"
#include "storage/catalog.h"
#include "storage/cost_model.h"

namespace sitstats {

/// Workload-driven SIT selection, in the spirit of the companion paper
/// ([2], Section 2.2 here): given a workload of SPJ queries, decide
/// *which* SITs are worth creating before spending any scan on them.
///
/// Pipeline:
///  1. candidate enumeration — every subexpression of every workload
///    query that contains the predicate attribute's table yields a
///    candidate SIT(attr | subexpression);
///  2. benefit scoring — each candidate is probed with a *cheap* pilot
///    build (Sweep at a small sampling rate and few buckets); its score is
///    the workload-weighted estimation-error reduction of the pilot
///    versus pure propagation, measured against the pilot itself as the
///    reference (no ground-truth executions, matching the paper's "no
///    a-priori builds" requirement — the pilot costs a scan, but at the
///    pilot sampling rate);
///  3. selection — greedy benefit/cost knapsack under a scan-cost budget
///    (Cost(T) units of the scheduler's cost model);
///  4. creation — the selected set is handed to the Section 4 scheduler.
class SitAdvisor {
 public:
  struct Options {
    /// Pilot build: cheap and rough.
    double pilot_sampling_rate = 0.01;
    int pilot_buckets = 25;
    /// Creation budget in scheduler cost units (sum of Cost(T) over the
    /// selected SITs' dependency sequences, without sharing). Infinity =
    /// select everything with positive benefit.
    double budget = std::numeric_limits<double>::infinity();
    /// Candidates whose relative benefit score is below this are dropped
    /// even with budget to spare.
    double min_benefit = 0.05;
    CostModel cost_model;
    uint64_t seed = 42;
  };

  /// One scored candidate.
  struct Candidate {
    SitDescriptor descriptor;
    /// Workload-weighted symmetric disagreement between propagation and
    /// the pilot SIT over the queries the candidate applies to, each term
    /// in [0, 1); the benefit proxy (0 = propagation already agrees,
    /// large = propagation is far off and the SIT will correct it).
    double benefit = 0.0;
    /// One-at-a-time creation cost (scheduler units).
    double cost = 0.0;
    /// Number of workload queries the candidate applies to.
    int applicable_queries = 0;
  };

  struct Recommendation {
    std::vector<Candidate> selected;
    std::vector<Candidate> rejected;
    double total_cost = 0.0;
  };

  SitAdvisor(Catalog* catalog, BaseStatsCache* base_stats, Options options)
      : catalog_(catalog),
        base_stats_(base_stats),
        options_(std::move(options)) {}

  /// Enumerates candidate SITs for `workload`: all connected
  /// subexpressions (with >= 1 join) of each query's join tree that
  /// contain the attribute's table, deduplicated across queries.
  Result<std::vector<SitDescriptor>> EnumerateCandidates(
      const Workload& workload) const;

  /// Scores and selects candidates for `workload` under the budget.
  Result<Recommendation> Recommend(const Workload& workload);

  /// Builds the selected SITs (with `variant`) and registers them in
  /// `sits`. Creation currently builds one SIT at a time; callers wanting
  /// shared scans can feed recommendation.selected into
  /// BuildSitSchedulingProblem / ExecuteSitSchedule instead.
  Status CreateSelected(const Recommendation& recommendation,
                        SweepVariant variant, SitCatalog* sits);

 private:
  Catalog* catalog_;
  BaseStatsCache* base_stats_;
  Options options_;
};

}  // namespace sitstats

#endif  // SITSTATS_ADVISOR_ADVISOR_H_
