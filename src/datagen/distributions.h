#ifndef SITSTATS_DATAGEN_DISTRIBUTIONS_H_
#define SITSTATS_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sitstats {

/// Zipf distribution over the integer domain {1, ..., domain_size} with
/// P(k) proportional to 1/k^z. z = 0 degenerates to uniform; the paper's
/// experiments use z between 0.1 and 1. Sampling is inverse-CDF with
/// binary search over a precomputed cumulative table (O(log n) per draw).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t domain_size, double z);

  /// One draw in [1, domain_size].
  int64_t Sample(Rng* rng) const;

  /// `count` draws.
  std::vector<int64_t> SampleMany(size_t count, Rng* rng) const;

  uint64_t domain_size() const { return domain_size_; }
  double z() const { return z_; }

  /// Exact probability of value k (1-based).
  double Probability(int64_t k) const;

 private:
  uint64_t domain_size_;
  double z_;
  std::vector<double> cdf_;
};

/// `count` uniform integer draws in [lo, hi].
std::vector<int64_t> UniformInts(size_t count, int64_t lo, int64_t hi,
                                 Rng* rng);

/// `count` uniform double draws in [lo, hi).
std::vector<double> UniformDoubles(size_t count, double lo, double hi,
                                   Rng* rng);

}  // namespace sitstats

#endif  // SITSTATS_DATAGEN_DISTRIBUTIONS_H_
