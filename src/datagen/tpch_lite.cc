#include "datagen/tpch_lite.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "datagen/distributions.h"

namespace sitstats {

Result<std::unique_ptr<Catalog>> MakeTpchLiteDatabase(
    const TpchLiteSpec& spec) {
  if (spec.num_nations == 0 || spec.num_customers == 0 ||
      spec.num_orders == 0 || spec.avg_lineitems_per_order < 1) {
    return Status::InvalidArgument("TPC-H-lite spec sizes must be positive");
  }
  Rng rng(spec.seed);
  auto catalog = std::make_unique<Catalog>();

  // nation(n_nationkey, n_regionkey): 5 regions.
  {
    Schema schema;
    schema.AddColumn("n_nationkey", ValueType::kInt64);
    schema.AddColumn("n_regionkey", ValueType::kInt64);
    SITSTATS_ASSIGN_OR_RETURN(Table * nation,
                              catalog->CreateTable("nation", schema));
    for (size_t n = 0; n < spec.num_nations; ++n) {
      SITSTATS_RETURN_IF_ERROR(nation->AppendRow(
          {Value(static_cast<int64_t>(n + 1)),
           Value(static_cast<int64_t>(n % 5 + 1))}));
    }
  }

  // customer(c_custkey, c_nationkey, c_mktsegment, c_acctbal).
  std::vector<double> acctbal(spec.num_customers);
  {
    Schema schema;
    schema.AddColumn("c_custkey", ValueType::kInt64);
    schema.AddColumn("c_nationkey", ValueType::kInt64);
    schema.AddColumn("c_mktsegment", ValueType::kInt64);
    schema.AddColumn("c_acctbal", ValueType::kDouble);
    SITSTATS_ASSIGN_OR_RETURN(Table * customer,
                              catalog->CreateTable("customer", schema));
    customer->Reserve(spec.num_customers);
    for (size_t c = 0; c < spec.num_customers; ++c) {
      acctbal[c] = rng.UniformDouble(0.0, 10'000.0);
      SITSTATS_RETURN_IF_ERROR(customer->AppendRow(
          {Value(static_cast<int64_t>(c + 1)),
           Value(rng.UniformInt(1, static_cast<int64_t>(spec.num_nations))),
           Value(rng.UniformInt(1, 5)), Value(acctbal[c])}));
    }
  }

  // Rank customers by balance (descending): rank r gets zipf weight
  // 1/(r+1)^z, so wealthy customers place many more orders.
  std::vector<size_t> by_balance(spec.num_customers);
  std::iota(by_balance.begin(), by_balance.end(), 0);
  std::sort(by_balance.begin(), by_balance.end(),
            [&acctbal](size_t a, size_t b) {
              return acctbal[a] > acctbal[b];
            });
  ZipfDistribution order_dist(spec.num_customers, spec.order_skew_z);

  // orders(o_orderkey, o_custkey, o_orderdate, o_totalprice).
  std::vector<double> totalprice(spec.num_orders);
  {
    Schema schema;
    schema.AddColumn("o_orderkey", ValueType::kInt64);
    schema.AddColumn("o_custkey", ValueType::kInt64);
    schema.AddColumn("o_orderdate", ValueType::kInt64);
    schema.AddColumn("o_totalprice", ValueType::kDouble);
    SITSTATS_ASSIGN_OR_RETURN(Table * orders,
                              catalog->CreateTable("orders", schema));
    orders->Reserve(spec.num_orders);
    for (size_t o = 0; o < spec.num_orders; ++o) {
      size_t rank = static_cast<size_t>(order_dist.Sample(&rng)) - 1;
      size_t cust = by_balance[rank];
      // Order value tracks the customer's balance (strong correlation).
      totalprice[o] =
          0.05 * acctbal[cust] + rng.UniformDouble(0.0, 100.0);
      SITSTATS_RETURN_IF_ERROR(orders->AppendRow(
          {Value(static_cast<int64_t>(o + 1)),
           Value(static_cast<int64_t>(cust + 1)),
           Value(rng.UniformInt(1, 2'400)), Value(totalprice[o])}));
    }
  }

  // lineitem(l_orderkey, l_linenumber, l_quantity, l_extendedprice).
  {
    Schema schema;
    schema.AddColumn("l_orderkey", ValueType::kInt64);
    schema.AddColumn("l_linenumber", ValueType::kInt64);
    schema.AddColumn("l_quantity", ValueType::kInt64);
    schema.AddColumn("l_extendedprice", ValueType::kDouble);
    SITSTATS_ASSIGN_OR_RETURN(Table * lineitem,
                              catalog->CreateTable("lineitem", schema));
    const int max_lines = 2 * spec.avg_lineitems_per_order - 1;
    // Larger orders carry more line items (correlated, with jitter), so
    // the join orders ⋈ lineitem amplifies expensive orders.
    double max_price = 0.0;
    for (double p : totalprice) max_price = std::max(max_price, p);
    for (size_t o = 0; o < spec.num_orders; ++o) {
      int base_lines = 1 + static_cast<int>((totalprice[o] / max_price) *
                                            (max_lines - 1));
      int lines = base_lines + static_cast<int>(rng.UniformInt(-1, 1));
      if (lines < 1) lines = 1;
      if (lines > max_lines) lines = max_lines;
      for (int l = 0; l < lines; ++l) {
        double price = totalprice[o] / lines +
                       rng.UniformDouble(-5.0, 5.0);
        SITSTATS_RETURN_IF_ERROR(lineitem->AppendRow(
            {Value(static_cast<int64_t>(o + 1)),
             Value(static_cast<int64_t>(l + 1)),
             Value(rng.UniformInt(1, 50)), Value(std::max(price, 0.0))}));
      }
    }
  }

  SITSTATS_DCHECK_OK(catalog->ValidateConsistency());
  return catalog;
}

}  // namespace sitstats
