#ifndef SITSTATS_DATAGEN_SYNTHETIC_DB_H_
#define SITSTATS_DATAGEN_SYNTHETIC_DB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "query/column_ref.h"
#include "query/generating_query.h"
#include "storage/catalog.h"

namespace sitstats {

/// How non-key attributes relate to the join keys of their table.
enum class AttributeCorrelation {
  /// Payload attributes are independent of the join keys — the regime in
  /// which the independence assumption holds (Section 5.1's control
  /// experiment).
  kIndependent,
  /// Payload attributes (and the next-hop join key of intermediate
  /// tables) are functions of the previous join key plus bounded noise —
  /// the regime that breaks the independence assumption.
  kCorrelated,
};

/// Specification of the paper's synthetic chain-join database
/// (Section 5.1): num_tables tables R1..Rn with 10,000-100,000 tuples,
/// three to five attributes each, join attributes uniform or zipfian
/// (z in 0.1..1).
struct ChainDbSpec {
  int num_tables = 2;
  /// Row counts per table; if empty, drawn uniformly from
  /// [min_rows, max_rows].
  std::vector<size_t> table_rows;
  size_t min_rows = 10'000;
  size_t max_rows = 100'000;
  /// Join-key domain {1..join_domain}.
  uint64_t join_domain = 1'000;
  /// Zipf skew of the join attributes (0 = uniform; the paper's "skewed"
  /// runs use z = 1).
  double zipf_z = 1.0;
  AttributeCorrelation correlation = AttributeCorrelation::kCorrelated;
  /// Noise amplitude for correlated attributes, as a fraction of the
  /// domain.
  double noise_fraction = 0.05;
  /// Extra independent payload columns per table (the paper's tables have
  /// 3-5 attributes).
  int extra_attributes = 2;
  uint64_t seed = 42;
};

/// A generated chain database together with the chain generating query
/// R1 ⋈ R2 ⋈ ... ⋈ Rn and the conventional SIT attribute (last table's
/// "a" column, so the join tree is rooted at Rn).
struct ChainDatabase {
  std::unique_ptr<Catalog> catalog;
  GeneratingQuery query;
  ColumnRef sit_attribute;
};

/// Table Ri columns: "jp" (join key to R_{i-1}, absent in R1), "jn" (join
/// key to R_{i+1}, absent in Rn), "a" (payload the SITs are built over),
/// plus extra_attributes independent payload columns "b0", "b1", ...
/// Joins: Ri.jn = R_{i+1}.jp.
Result<ChainDatabase> MakeChainJoinDatabase(const ChainDbSpec& spec);

/// The k-way prefix chain query R1 ⋈ ... ⋈ Rk of a chain database built
/// with `num_tables >= k` (useful for comparing 2-, 3-, 4-way SITs over
/// the same data).
Result<GeneratingQuery> ChainPrefixQuery(const ChainDbSpec& spec, int k);

}  // namespace sitstats

#endif  // SITSTATS_DATAGEN_SYNTHETIC_DB_H_
