#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sitstats {

ZipfDistribution::ZipfDistribution(uint64_t domain_size, double z)
    : domain_size_(domain_size), z_(z) {
  SITSTATS_CHECK(domain_size_ > 0) << "zipf domain must be non-empty";
  SITSTATS_CHECK(z_ >= 0.0) << "zipf parameter must be non-negative";
  cdf_.resize(domain_size_);
  double acc = 0.0;
  for (uint64_t k = 1; k <= domain_size_; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), z_);
    cdf_[k - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

std::vector<int64_t> ZipfDistribution::SampleMany(size_t count,
                                                  Rng* rng) const {
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Sample(rng));
  return out;
}

double ZipfDistribution::Probability(int64_t k) const {
  if (k < 1 || static_cast<uint64_t>(k) > domain_size_) return 0.0;
  size_t idx = static_cast<size_t>(k - 1);
  double prev = idx == 0 ? 0.0 : cdf_[idx - 1];
  return cdf_[idx] - prev;
}

std::vector<int64_t> UniformInts(size_t count, int64_t lo, int64_t hi,
                                 Rng* rng) {
  std::vector<int64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(rng->UniformInt(lo, hi));
  return out;
}

std::vector<double> UniformDoubles(size_t count, double lo, double hi,
                                   Rng* rng) {
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(rng->UniformDouble(lo, hi));
  }
  return out;
}

}  // namespace sitstats
