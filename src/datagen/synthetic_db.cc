#include "datagen/synthetic_db.h"

#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/distributions.h"

namespace sitstats {

namespace {

std::string TableName(int i) { return NumberedName("R", i + 1); }

/// Correlates `key` with bounded triangular noise, clamped to the domain
/// {1..domain}. Triangular noise (sum of two uniforms) gives the derived
/// attribute a smooth unimodal conditional distribution, as one would see
/// for naturally correlated columns (e.g. price vs. tax).
int64_t CorrelateKey(int64_t key, uint64_t domain, double noise_fraction,
                     Rng* rng) {
  int64_t amplitude = static_cast<int64_t>(
      noise_fraction * static_cast<double>(domain));
  int64_t noise = 0;
  if (amplitude > 0) {
    noise = (rng->UniformInt(-amplitude, amplitude) +
             rng->UniformInt(-amplitude, amplitude)) /
            2;
  }
  int64_t shifted = key + noise;
  if (shifted < 1) shifted = 1;
  int64_t d = static_cast<int64_t>(domain);
  if (shifted > d) shifted = d;
  return shifted;
}

Result<std::vector<JoinPredicate>> ChainJoins(int k) {
  std::vector<JoinPredicate> joins;
  for (int i = 0; i + 1 < k; ++i) {
    JoinPredicate join;
    join.left = ColumnRef{TableName(i), "jn"};
    join.right = ColumnRef{TableName(i + 1), "jp"};
    joins.push_back(join);
  }
  return joins;
}

}  // namespace

Result<ChainDatabase> MakeChainJoinDatabase(const ChainDbSpec& spec) {
  if (spec.num_tables < 1) {
    return Status::InvalidArgument("chain database needs at least 1 table");
  }
  if (!spec.table_rows.empty() &&
      spec.table_rows.size() != static_cast<size_t>(spec.num_tables)) {
    return Status::InvalidArgument(
        "table_rows must be empty or have num_tables entries");
  }
  if (spec.join_domain == 0) {
    return Status::InvalidArgument("join_domain must be positive");
  }
  Rng rng(spec.seed);
  ZipfDistribution key_dist(spec.join_domain, spec.zipf_z);
  auto catalog = std::make_unique<Catalog>();

  for (int i = 0; i < spec.num_tables; ++i) {
    const bool has_prev = i > 0;
    const bool has_next = i + 1 < spec.num_tables;
    Schema schema;
    if (has_prev) schema.AddColumn("jp", ValueType::kInt64);
    if (has_next) schema.AddColumn("jn", ValueType::kInt64);
    schema.AddColumn("a", ValueType::kInt64);
    for (int e = 0; e < spec.extra_attributes; ++e) {
      schema.AddColumn(NumberedName("b", e), ValueType::kInt64);
    }
    SITSTATS_ASSIGN_OR_RETURN(Table * table,
                              catalog->CreateTable(TableName(i), schema));
    size_t rows = spec.table_rows.empty()
                      ? static_cast<size_t>(rng.UniformInt(
                            static_cast<int64_t>(spec.min_rows),
                            static_cast<int64_t>(spec.max_rows)))
                      : spec.table_rows[static_cast<size_t>(i)];
    table->Reserve(rows);
    const bool correlated =
        spec.correlation == AttributeCorrelation::kCorrelated;
    for (size_t r = 0; r < rows; ++r) {
      // The "anchor" key every correlated attribute derives from: the
      // previous-hop join key when present, else the next-hop key.
      int64_t anchor = key_dist.Sample(&rng);
      std::vector<Value> row;
      if (has_prev) row.emplace_back(anchor);
      if (has_next) {
        int64_t jn;
        if (!has_prev) {
          jn = anchor;  // R1: the anchor is its next-hop key
        } else if (correlated) {
          jn = CorrelateKey(anchor, spec.join_domain, spec.noise_fraction,
                            &rng);
        } else {
          jn = key_dist.Sample(&rng);
        }
        row.emplace_back(jn);
      }
      int64_t a = correlated ? CorrelateKey(anchor, spec.join_domain,
                                            spec.noise_fraction, &rng)
                             : rng.UniformInt(
                                   1, static_cast<int64_t>(spec.join_domain));
      row.emplace_back(a);
      for (int e = 0; e < spec.extra_attributes; ++e) {
        row.emplace_back(
            rng.UniformInt(1, static_cast<int64_t>(spec.join_domain)));
      }
      SITSTATS_RETURN_IF_ERROR(table->AppendRow(row));
    }
  }

  std::vector<std::string> tables;
  for (int i = 0; i < spec.num_tables; ++i) tables.push_back(TableName(i));
  SITSTATS_ASSIGN_OR_RETURN(std::vector<JoinPredicate> joins,
                            ChainJoins(spec.num_tables));
  SITSTATS_ASSIGN_OR_RETURN(
      GeneratingQuery query,
      GeneratingQuery::Create(std::move(tables), std::move(joins)));
  ColumnRef attribute{TableName(spec.num_tables - 1), "a"};
  SITSTATS_DCHECK_OK(catalog->ValidateConsistency());
  return ChainDatabase{std::move(catalog), std::move(query), attribute};
}

Result<GeneratingQuery> ChainPrefixQuery(const ChainDbSpec& spec, int k) {
  if (k < 1 || k > spec.num_tables) {
    return Status::InvalidArgument("chain prefix length out of range");
  }
  std::vector<std::string> tables;
  for (int i = 0; i < k; ++i) tables.push_back(TableName(i));
  SITSTATS_ASSIGN_OR_RETURN(std::vector<JoinPredicate> joins, ChainJoins(k));
  return GeneratingQuery::Create(std::move(tables), std::move(joins));
}

}  // namespace sitstats
