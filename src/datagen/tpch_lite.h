#ifndef SITSTATS_DATAGEN_TPCH_LITE_H_
#define SITSTATS_DATAGEN_TPCH_LITE_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "storage/catalog.h"

namespace sitstats {

/// Parameters of the TPC-H-lite generator: a scaled-down, integer-keyed
/// subset of the TPC-H schema (nation / customer / orders / lineitem)
/// with *deliberate* key skew and cross-table correlation — the regime
/// that motivates SITs. This substitutes for the full 1GB dbgen dataset:
/// the examples only need a realistic foreign-key join schema whose
/// joined attribute distributions differ from the base ones.
struct TpchLiteSpec {
  size_t num_nations = 25;
  size_t num_customers = 5'000;
  size_t num_orders = 30'000;
  /// Lineitems per order are uniform in [1, 2*avg-1].
  int avg_lineitems_per_order = 4;
  /// Skew of orders across customers (zipf over customers ranked by
  /// account balance: wealthy customers place many more orders).
  double order_skew_z = 1.0;
  uint64_t seed = 42;
};

/// Generated tables:
///   nation(n_nationkey, n_regionkey)
///   customer(c_custkey, c_nationkey, c_mktsegment, c_acctbal)
///   orders(o_orderkey, o_custkey, o_orderdate, o_totalprice)
///   lineitem(l_orderkey, l_linenumber, l_quantity, l_extendedprice)
///
/// Correlations baked in: order volume is zipf-skewed towards customers
/// with high c_acctbal, and o_totalprice tracks the owning customer's
/// balance — so the distribution of o_totalprice over customer ⋈ orders
/// (or of l_extendedprice over orders ⋈ lineitem) differs sharply from
/// the base-table distribution, defeating the independence assumption.
Result<std::unique_ptr<Catalog>> MakeTpchLiteDatabase(
    const TpchLiteSpec& spec);

}  // namespace sitstats

#endif  // SITSTATS_DATAGEN_TPCH_LITE_H_
